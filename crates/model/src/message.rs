use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DomainName, RecordType, ResourceRecord, RrSet};

/// DNS response codes used in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error (may still carry an empty answer section — NODATA).
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// The queried name does not exist.
    NxDomain,
    /// Query kind not implemented.
    NotImp,
    /// Server refuses to answer — the classic *lame* response.
    Refused,
}

impl Rcode {
    /// The RFC 1035 wire code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<Rcode> {
        Some(match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => return None,
        })
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcode::NoError => "NOERROR",
            Rcode::FormErr => "FORMERR",
            Rcode::ServFail => "SERVFAIL",
            Rcode::NxDomain => "NXDOMAIN",
            Rcode::NotImp => "NOTIMP",
            Rcode::Refused => "REFUSED",
        };
        f.write_str(s)
    }
}

/// Whether a message is a query or a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// A question sent to a server.
    Query,
    /// A server's reply.
    Response,
}

/// The single question a message carries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// The queried name.
    pub name: DomainName,
    /// The queried type.
    pub rtype: RecordType,
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IN {}", self.name, self.rtype)
    }
}

/// A DNS message: the unit the simulated network transports.
///
/// ```
/// use govdns_model::{Message, RecordType, Rcode};
/// let q = Message::query(7, "portal.gov.example".parse()?, RecordType::Ns);
/// let r = q.response().authoritative();
/// assert_eq!(r.id, 7);
/// assert_eq!(r.rcode, Rcode::NoError);
/// assert!(r.aa);
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction id, echoed by responses.
    pub id: u16,
    /// Query or response.
    pub kind: MessageKind,
    /// Authoritative-answer flag. The measurement pipeline treats only
    /// `aa`-set answers as authoritative responses.
    pub aa: bool,
    /// Truncation flag: the responder could not fit the full answer (or a
    /// middlebox clipped it). A truncated response carries no usable
    /// record sections and asks the client to retry.
    pub tc: bool,
    /// Response code (meaningful for responses; `NoError` on queries).
    pub rcode: Rcode,
    /// The question section (exactly one question, as in practice).
    pub question: Question,
    /// Answer records.
    pub answers: Vec<ResourceRecord>,
    /// Authority-section records (NS RRsets of referrals live here).
    pub authority: Vec<ResourceRecord>,
    /// Additional-section records (glue).
    pub additional: Vec<ResourceRecord>,
}

impl Message {
    /// Builds a query.
    pub fn query(id: u16, name: DomainName, rtype: RecordType) -> Self {
        Message {
            id,
            kind: MessageKind::Query,
            aa: false,
            tc: false,
            rcode: Rcode::NoError,
            question: Question { name, rtype },
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Starts a response echoing this query's id and question.
    pub fn response(&self) -> Message {
        Message {
            id: self.id,
            kind: MessageKind::Response,
            aa: false,
            tc: false,
            rcode: Rcode::NoError,
            question: self.question.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Sets the authoritative-answer flag.
    #[must_use]
    pub fn authoritative(mut self) -> Message {
        self.aa = true;
        self
    }

    /// Sets the rcode.
    #[must_use]
    pub fn with_rcode(mut self, rcode: Rcode) -> Message {
        self.rcode = rcode;
        self
    }

    /// Appends an RRset to the answer section.
    #[must_use]
    pub fn with_answer(mut self, set: &RrSet) -> Message {
        self.answers.extend(set.to_records());
        self
    }

    /// Appends an RRset to the authority section (referral NS data).
    #[must_use]
    pub fn with_authority(mut self, set: &RrSet) -> Message {
        self.authority.extend(set.to_records());
        self
    }

    /// Appends a record to the additional section (glue).
    #[must_use]
    pub fn with_additional(mut self, rr: ResourceRecord) -> Message {
        self.additional.push(rr);
        self
    }

    /// Truncates the message in place: every record section is dropped
    /// and the `tc` flag set, as a size-limited responder would.
    pub fn truncate(&mut self) {
        self.tc = true;
        self.answers.clear();
        self.authority.clear();
        self.additional.clear();
    }

    /// Whether this is an authoritative answer for the question (`aa` set,
    /// `NOERROR`, response kind, not truncated).
    pub fn is_authoritative_answer(&self) -> bool {
        self.kind == MessageKind::Response && self.aa && !self.tc && self.rcode == Rcode::NoError
    }

    /// Whether this response is a referral: no answers, NS records in the
    /// authority section, `aa` clear.
    pub fn is_referral(&self) -> bool {
        self.kind == MessageKind::Response
            && !self.aa
            && self.rcode == Rcode::NoError
            && self.answers.is_empty()
            && self.authority.iter().any(|r| r.rtype() == RecordType::Ns)
    }

    /// NS targets found in the answer section.
    pub fn answer_ns_targets(&self) -> Vec<&DomainName> {
        self.answers.iter().filter_map(|r| r.data.as_ns()).collect()
    }

    /// NS targets found in the authority section.
    pub fn authority_ns_targets(&self) -> Vec<&DomainName> {
        self.authority.iter().filter_map(|r| r.data.as_ns()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecordData, RecordType};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn response_echoes_query() {
        let q = Message::query(42, n("x.gov"), RecordType::Ns);
        let r = q.response();
        assert_eq!(r.id, 42);
        assert_eq!(r.question, q.question);
        assert_eq!(r.kind, MessageKind::Response);
    }

    #[test]
    fn authoritative_answer_detection() {
        let q = Message::query(1, n("x.gov"), RecordType::Ns);
        let mut set = RrSet::new(n("x.gov"), RecordType::Ns, 300);
        set.push(RecordData::Ns(n("ns1.x.gov")));
        let r = q.response().authoritative().with_answer(&set);
        assert!(r.is_authoritative_answer());
        assert!(!r.is_referral());
        assert_eq!(r.answer_ns_targets(), vec![&n("ns1.x.gov")]);
    }

    #[test]
    fn referral_detection() {
        let q = Message::query(1, n("www.x.gov"), RecordType::A);
        let mut set = RrSet::new(n("x.gov"), RecordType::Ns, 300);
        set.push(RecordData::Ns(n("ns1.x.gov")));
        let r = q.response().with_authority(&set);
        assert!(r.is_referral());
        assert!(!r.is_authoritative_answer());
        assert_eq!(r.authority_ns_targets(), vec![&n("ns1.x.gov")]);
    }

    #[test]
    fn refused_is_neither() {
        let q = Message::query(1, n("x.gov"), RecordType::Ns);
        let r = q.response().with_rcode(Rcode::Refused);
        assert!(!r.is_referral());
        assert!(!r.is_authoritative_answer());
    }

    #[test]
    fn rcode_roundtrip() {
        for c in 0..=5u8 {
            assert_eq!(Rcode::from_code(c).unwrap().code(), c);
        }
        assert!(Rcode::from_code(9).is_none());
    }
}
