use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Days per week; the paper's PDNS stability filter keeps records whose
/// first-seen/last-seen span is at least this many days (the largest
/// resolver cache TTL among BIND, Unbound, MaraDNS, Windows DNS, and
/// Google Public DNS).
pub const DAYS_PER_WEEK: i64 = 7;

/// A calendar year in the study's timeline.
pub type Year = i32;

/// A civil date, stored as days since 1970-01-01 (proleptic Gregorian).
///
/// The longitudinal analyses only need day-resolution timestamps, year
/// bucketing, and day arithmetic, so this type replaces a chrono dependency.
///
/// ```
/// use govdns_model::SimDate;
/// let d = SimDate::from_ymd(2020, 2, 29);
/// assert_eq!(d.year(), 2020);
/// assert_eq!((d + 1).ymd(), (2020, 3, 1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDate(i64);

impl SimDate {
    /// Builds a date from a year/month/day triple.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range for a civil date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            (1..=days_in_month(year, month)).contains(&day),
            "day {day} out of range for {year}-{month:02}"
        );
        SimDate(days_from_civil(year, month, day))
    }

    /// Builds a date from a raw day count since 1970-01-01.
    pub fn from_days(days: i64) -> Self {
        SimDate(days)
    }

    /// Days since 1970-01-01 (may be negative).
    pub fn days(self) -> i64 {
        self.0
    }

    /// The `(year, month, day)` triple.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The calendar year.
    pub fn year(self) -> Year {
        self.ymd().0
    }

    /// January 1 of `year`.
    pub fn year_start(year: Year) -> Self {
        SimDate::from_ymd(year, 1, 1)
    }

    /// December 31 of `year`.
    pub fn year_end(year: Year) -> Self {
        SimDate::from_ymd(year, 12, 31)
    }

    /// Number of days from `self` to `other` (positive if `other` is later).
    pub fn days_until(self, other: SimDate) -> i64 {
        other.0 - self.0
    }

    /// The later of two dates.
    pub fn max(self, other: SimDate) -> SimDate {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two dates.
    pub fn min(self, other: SimDate) -> SimDate {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl Add<i64> for SimDate {
    type Output = SimDate;
    fn add(self, rhs: i64) -> SimDate {
        SimDate(self.0 + rhs)
    }
}

impl AddAssign<i64> for SimDate {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<SimDate> for SimDate {
    type Output = i64;
    fn sub(self, rhs: SimDate) -> i64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl FromStr for SimDate {
    type Err = String;

    /// Parses `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.splitn(3, '-');
        let err = || format!("invalid date `{s}`, expected YYYY-MM-DD");
        let y: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&m) || !(1..=days_in_month(y, m)).contains(&d) {
            return Err(err());
        }
        Ok(SimDate::from_ymd(y, m, d))
    }
}

/// An inclusive date range `[start, end]`.
///
/// Used for PDNS time-window queries and per-year bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DateRange {
    /// First day of the range.
    pub start: SimDate,
    /// Last day of the range (inclusive).
    pub end: SimDate,
}

impl DateRange {
    /// Builds a range; `start` and `end` are both inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes `start`.
    pub fn new(start: SimDate, end: SimDate) -> Self {
        assert!(start <= end, "range end {end} precedes start {start}");
        DateRange { start, end }
    }

    /// The whole calendar year `year`.
    pub fn year(year: Year) -> Self {
        DateRange::new(SimDate::year_start(year), SimDate::year_end(year))
    }

    /// Whether `d` falls inside the range.
    pub fn contains(&self, d: SimDate) -> bool {
        self.start <= d && d <= self.end
    }

    /// Whether two inclusive ranges overlap by at least one day.
    pub fn overlaps(&self, other: &DateRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &DateRange) -> Option<DateRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(DateRange { start, end })
    }

    /// Number of days in the range (≥ 1).
    pub fn len_days(&self) -> i64 {
        self.end - self.start + 1
    }

    /// Iterates over every date in the range.
    pub fn iter(&self) -> impl Iterator<Item = SimDate> + '_ {
        (self.start.days()..=self.end.days()).map(SimDate::from_days)
    }
}

fn is_leap(y: i32) -> bool {
    y % 4 == 0 && (y % 100 != 0 || y % 400 == 0)
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated by caller"),
    }
}

// Howard Hinnant's civil-date algorithms (public domain).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimDate::from_ymd(1970, 1, 1).days(), 0);
        assert_eq!(SimDate::from_days(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(SimDate::from_ymd(2000, 3, 1).days(), 11_017);
        assert_eq!(SimDate::from_ymd(2011, 1, 1).year(), 2011);
        assert_eq!(SimDate::from_ymd(2020, 12, 31) - SimDate::from_ymd(2020, 1, 1), 365);
        assert_eq!(SimDate::from_ymd(2019, 12, 31) - SimDate::from_ymd(2019, 1, 1), 364);
    }

    #[test]
    fn leap_year_handling() {
        assert_eq!((SimDate::from_ymd(2020, 2, 28) + 1).ymd(), (2020, 2, 29));
        assert_eq!((SimDate::from_ymd(2100, 2, 28) + 1).ymd(), (2100, 3, 1));
        assert_eq!((SimDate::from_ymd(2000, 2, 28) + 1).ymd(), (2000, 2, 29));
    }

    #[test]
    #[should_panic(expected = "day 29 out of range")]
    fn rejects_bad_day() {
        let _ = SimDate::from_ymd(2019, 2, 29);
    }

    #[test]
    fn roundtrip_decade() {
        let mut d = SimDate::from_ymd(2010, 1, 1);
        let end = SimDate::from_ymd(2021, 12, 31);
        while d <= end {
            let (y, m, dd) = d.ymd();
            assert_eq!(SimDate::from_ymd(y, m, dd), d);
            d += 1;
        }
    }

    #[test]
    fn display_and_parse() {
        let d = SimDate::from_ymd(2021, 4, 9);
        assert_eq!(d.to_string(), "2021-04-09");
        assert_eq!("2021-04-09".parse::<SimDate>().unwrap(), d);
        assert!("2021-13-01".parse::<SimDate>().is_err());
        assert!("nonsense".parse::<SimDate>().is_err());
    }

    #[test]
    fn range_semantics() {
        let r = DateRange::year(2020);
        assert_eq!(r.len_days(), 366);
        assert!(r.contains(SimDate::from_ymd(2020, 7, 4)));
        assert!(!r.contains(SimDate::from_ymd(2021, 1, 1)));
        let s = DateRange::new(SimDate::from_ymd(2020, 12, 1), SimDate::from_ymd(2021, 2, 1));
        assert!(r.overlaps(&s));
        let i = r.intersect(&s).unwrap();
        assert_eq!(i.start, SimDate::from_ymd(2020, 12, 1));
        assert_eq!(i.end, SimDate::from_ymd(2020, 12, 31));
        let t = DateRange::year(2022);
        assert!(!r.overlaps(&t));
        assert!(r.intersect(&t).is_none());
    }

    #[test]
    fn range_iter_covers_every_day() {
        let r = DateRange::new(SimDate::from_ymd(2020, 2, 27), SimDate::from_ymd(2020, 3, 2));
        let days: Vec<String> = r.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            days,
            vec!["2020-02-27", "2020-02-28", "2020-02-29", "2020-03-01", "2020-03-02"]
        );
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn range_rejects_inverted() {
        let _ = DateRange::new(SimDate::from_ymd(2021, 1, 2), SimDate::from_ymd(2021, 1, 1));
    }
}
