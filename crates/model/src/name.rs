use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// Maximum number of octets in a wire-format domain name (RFC 1035 §3.1).
pub const MAX_NAME_LEN: usize = 255;
/// Maximum number of labels a name can carry (each label ≥ 1 octet + length).
pub const MAX_LABELS: usize = 127;
const MAX_LABEL_LEN: usize = 63;

/// One label of a domain name, lowercase-normalized.
///
/// Labels compare case-insensitively because they are normalized at
/// construction. The study's pipeline also encounters *relative-label*
/// misconfigurations (a bare `ns` leaking out of a zone file); those are
/// representable as a one-label [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(String);

impl Label {
    /// Creates a label, validating length and character set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyLabel`], [`ModelError::LabelTooLong`], or
    /// [`ModelError::InvalidCharacter`] on invalid input.
    pub fn new(s: &str) -> Result<Self, ModelError> {
        if s.is_empty() {
            return Err(ModelError::EmptyLabel);
        }
        if s.len() > MAX_LABEL_LEN {
            return Err(ModelError::LabelTooLong(s.to_owned()));
        }
        for c in s.chars() {
            if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                return Err(ModelError::InvalidCharacter(c));
            }
        }
        Ok(Label(s.to_ascii_lowercase()))
    }

    /// The label text (always lowercase).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the label is empty (never true for a constructed label).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A validated, case-normalized, absolute domain name.
///
/// Labels are stored in presentation order (`www`, `gov`, `example` for
/// `www.gov.example`). The root name has zero labels and displays as `.`.
///
/// `DomainName` is the key type of the whole workspace: zones, the
/// passive-DNS database, and every analysis index by it, so it implements
/// the full set of ordering and hashing traits.
///
/// ```
/// use govdns_model::DomainName;
/// let name: DomainName = "WWW.Portal.GOV.example".parse()?;
/// assert_eq!(name.to_string(), "www.portal.gov.example");
/// assert_eq!(name.level(), 4);
/// assert!(name.is_subdomain_of(&"gov.example".parse()?));
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DomainName {
    labels: Vec<Label>,
}

impl DomainName {
    /// The root name (`.`).
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Builds a name from labels in presentation order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NameTooLong`] if the resulting wire length
    /// exceeds 255 octets.
    pub fn from_labels<I>(labels: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = Label>,
    {
        let labels: Vec<Label> = labels.into_iter().collect();
        let name = DomainName { labels };
        name.check_len()?;
        Ok(name)
    }

    fn check_len(&self) -> Result<(), ModelError> {
        let wire_len = self.wire_len();
        if wire_len > MAX_NAME_LEN {
            return Err(ModelError::NameTooLong(wire_len));
        }
        if self.labels.len() > MAX_LABELS {
            return Err(ModelError::NameTooLong(wire_len));
        }
        Ok(())
    }

    /// Length of the uncompressed wire encoding (labels + length octets +
    /// terminal root octet).
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The labels in presentation order (leftmost first).
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Number of labels; the root has level 0, `com` level 1,
    /// `example.com` level 2, and so on. The paper reports the mix of
    /// second-, third-, and fourth-level domains using this notion.
    pub fn level(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// The immediate parent (one label removed), or `None` for the root.
    ///
    /// ```
    /// use govdns_model::DomainName;
    /// let n: DomainName = "a.b.c".parse()?;
    /// assert_eq!(n.parent().unwrap().to_string(), "b.c");
    /// # Ok::<(), govdns_model::ModelError>(())
    /// ```
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.is_empty() {
            None
        } else {
            Some(DomainName { labels: self.labels[1..].to_vec() })
        }
    }

    /// Whether `self` is a strict subdomain of `other` (equal names are not
    /// subdomains of each other).
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        self.labels.len() > other.labels.len() && self.ends_with(other)
    }

    /// Whether `self` equals `other` or lies underneath it.
    pub fn is_within(&self, other: &DomainName) -> bool {
        self == other || self.is_subdomain_of(other)
    }

    /// Whether the trailing labels of `self` match `suffix` exactly.
    pub fn ends_with(&self, suffix: &DomainName) -> bool {
        if suffix.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - suffix.labels.len();
        self.labels[skip..] == suffix.labels[..]
    }

    /// Prefixes a label, producing the child name.
    ///
    /// # Errors
    ///
    /// Returns an error if the label is invalid or the result is too long.
    pub fn prepend(&self, label: &str) -> Result<DomainName, ModelError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(Label::new(label)?);
        labels.extend(self.labels.iter().cloned());
        DomainName::from_labels(labels)
    }

    /// The name truncated to its trailing `n` labels. If `n` is not smaller
    /// than the level, returns a clone.
    ///
    /// `("www.a.gov.example", 2)` yields `gov.example`; this is how the
    /// pipeline extracts registered domains and suffixes from portal FQDNs.
    pub fn suffix(&self, n: usize) -> DomainName {
        if n >= self.labels.len() {
            return self.clone();
        }
        DomainName { labels: self.labels[self.labels.len() - n..].to_vec() }
    }

    /// Strips `suffix` from the end, returning the leading labels as a new
    /// (relative, but represented absolute) name, or `None` if `self` does
    /// not end with `suffix`.
    pub fn strip_suffix(&self, suffix: &DomainName) -> Option<DomainName> {
        if !self.ends_with(suffix) {
            return None;
        }
        let keep = self.labels.len() - suffix.labels.len();
        Some(DomainName { labels: self.labels[..keep].to_vec() })
    }

    /// Iterates over `self` and every ancestor up to and including the root,
    /// starting with `self`.
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors { name: self, next_level: Some(self.labels.len()) }
    }

    /// FNV-1a (64-bit) over the presentation form, without allocating.
    ///
    /// Byte-identical to hashing `self.to_string()` (labels joined by
    /// `.`, the root hashing as `"."`), which is the stream every
    /// qname-keyed hash in the workspace was historically computed
    /// over — fault plans, loss decisions, and retry-backoff jitter all
    /// key off this value, so it is part of the determinism contract.
    ///
    /// ```
    /// use govdns_model::DomainName;
    /// let name: DomainName = "portal.gov.example".parse()?;
    /// let mut reference: u64 = 0xcbf2_9ce4_8422_2325;
    /// for b in name.to_string().bytes() {
    ///     reference = (reference ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    /// }
    /// assert_eq!(name.fnv64(), reference);
    /// # Ok::<(), govdns_model::ModelError>(())
    /// ```
    pub fn fnv64(&self) -> u64 {
        self.fold_fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds the name's presentation bytes into an in-progress FNV-1a
    /// state `h` — the continuation form of [`fnv64`](Self::fnv64) for
    /// callers that seed the hash with other material (e.g. a
    /// destination address) before the name.
    pub fn fold_fnv64(&self, mut h: u64) -> u64 {
        const PRIME: u64 = 0x100_0000_01b3;
        if self.labels.is_empty() {
            // The root displays as ".".
            return (h ^ u64::from(b'.')).wrapping_mul(PRIME);
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                h = (h ^ u64::from(b'.')).wrapping_mul(PRIME);
            }
            for &b in label.as_str().as_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        h
    }
}

/// Iterator over a name and its ancestors; see [`DomainName::ancestors`].
#[derive(Debug)]
pub struct Ancestors<'a> {
    name: &'a DomainName,
    next_level: Option<usize>,
}

impl Iterator for Ancestors<'_> {
    type Item = DomainName;

    fn next(&mut self) -> Option<DomainName> {
        let level = self.next_level?;
        self.next_level = level.checked_sub(1);
        Some(self.name.suffix(level))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            f.write_str(l.as_str())?;
        }
        Ok(())
    }
}

impl FromStr for DomainName {
    type Err = ModelError;

    /// Parses a presentation-format name. A single trailing dot is accepted
    /// (absolute form); `.` parses as the root.
    fn from_str(s: &str) -> Result<Self, ModelError> {
        if s == "." || s.is_empty() {
            return Ok(DomainName::root());
        }
        let s = s.strip_suffix('.').unwrap_or(s);
        let labels = s.split('.').map(Label::new).collect::<Result<Vec<_>, _>>()?;
        DomainName::from_labels(labels)
    }
}

impl Default for DomainName {
    fn default() -> Self {
        DomainName::root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        assert_eq!(n("www.gov.example").to_string(), "www.gov.example");
        assert_eq!(n("www.gov.example.").to_string(), "www.gov.example");
        assert_eq!(DomainName::root().to_string(), ".");
    }

    #[test]
    fn normalizes_case() {
        assert_eq!(n("WWW.Example.COM"), n("www.example.com"));
    }

    #[test]
    fn rejects_bad_labels() {
        assert!("a..b".parse::<DomainName>().is_err());
        assert!("a b.c".parse::<DomainName>().is_err());
        assert!("a.b!".parse::<DomainName>().is_err());
        let long = "x".repeat(64);
        assert!(long.parse::<DomainName>().is_err());
    }

    #[test]
    fn rejects_overlong_names() {
        let label = "a".repeat(63);
        let s = vec![label; 5].join(".");
        assert!(s.parse::<DomainName>().is_err());
    }

    #[test]
    fn accepts_underscore_and_hyphen() {
        assert!("_dmarc.gov-portal.example".parse::<DomainName>().is_ok());
    }

    #[test]
    fn level_counts_labels() {
        assert_eq!(n("gov.br").level(), 2);
        assert_eq!(n("x.gov.br").level(), 3);
        assert_eq!(DomainName::root().level(), 0);
    }

    #[test]
    fn parent_walks_up() {
        assert_eq!(n("a.b.c").parent(), Some(n("b.c")));
        assert_eq!(n("c").parent(), Some(DomainName::root()));
        assert_eq!(DomainName::root().parent(), None);
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("www.gov.au").is_subdomain_of(&n("gov.au")));
        assert!(!n("gov.au").is_subdomain_of(&n("gov.au")));
        assert!(n("gov.au").is_within(&n("gov.au")));
        assert!(!n("notgov.au").is_subdomain_of(&n("gov.au")));
        assert!(n("a.b").is_subdomain_of(&DomainName::root()));
    }

    #[test]
    fn ends_with_requires_label_boundary() {
        // `xgov.au` must not match suffix `gov.au`.
        assert!(!n("xgov.au").ends_with(&n("gov.au")));
        assert!(n("x.gov.au").ends_with(&n("gov.au")));
    }

    #[test]
    fn suffix_and_strip() {
        let full = n("www.portal.gov.example");
        assert_eq!(full.suffix(2), n("gov.example"));
        assert_eq!(full.suffix(9), full);
        assert_eq!(full.strip_suffix(&n("gov.example")), Some(n("www.portal")));
        assert_eq!(full.strip_suffix(&n("gov.other")), None);
    }

    #[test]
    fn prepend_builds_children() {
        assert_eq!(n("gov.example").prepend("www").unwrap(), n("www.gov.example"));
        assert!(n("gov.example").prepend("bad label").is_err());
    }

    #[test]
    fn ancestors_walks_to_root() {
        let all: Vec<String> = n("a.b.c").ancestors().map(|d| d.to_string()).collect();
        assert_eq!(all, vec!["a.b.c", "b.c", "c", "."]);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![n("b.c"), n("a.c"), n("c")];
        v.sort();
        assert_eq!(v, vec![n("a.c"), n("b.c"), n("c")]);
    }

    #[test]
    fn fnv64_matches_the_allocating_reference() {
        let reference = |name: &DomainName| {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.to_string().bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            h
        };
        for s in ["gov.zz", "www.portal.gov.example", "a", "_dmarc.x.y", "."] {
            let name = n(s);
            assert_eq!(name.fnv64(), reference(&name), "{s}");
        }
        assert_eq!(DomainName::root().fnv64(), reference(&DomainName::root()));
    }

    #[test]
    fn fold_fnv64_continues_an_external_state() {
        // Seeding with arbitrary state must equal hashing the same bytes
        // by hand from that state — the backoff-jitter use case.
        let name = n("ns1.gov.zz");
        let seed = 0xdead_beef_u64;
        let mut h = seed;
        for b in name.to_string().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(name.fold_fnv64(seed), h);
    }

    #[test]
    fn wire_len_matches_rfc() {
        assert_eq!(DomainName::root().wire_len(), 1);
        assert_eq!(n("ab.c").wire_len(), 1 + 2 + 1 + 1 + 1);
    }
}
