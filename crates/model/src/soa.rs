use std::fmt;

use serde::{Deserialize, Serialize};

use crate::DomainName;

/// Start-of-authority rdata.
///
/// The study uses the `MNAME` (primary master) and `RNAME` (responsible
/// mailbox) fields to attribute zones to third-party DNS providers whose
/// nameserver hostnames alone are not distinctive, so those two fields are
/// first-class here.
///
/// ```
/// use govdns_model::Soa;
/// let soa = Soa::new(
///     "ns-1.awsdns-00.example".parse()?,
///     "awsdns-hostmaster.amazon.example".parse()?,
/// );
/// assert!(soa.rname.to_string().contains("amazon"));
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Soa {
    /// Primary master nameserver for the zone.
    pub mname: DomainName,
    /// Mailbox of the responsible party, encoded as a domain name.
    pub rname: DomainName,
    /// Zone serial number.
    pub serial: u32,
    /// Secondary refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry interval, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

impl Soa {
    /// Creates an SOA with conventional timer defaults.
    pub fn new(mname: DomainName, rname: DomainName) -> Self {
        Soa { mname, rname, serial: 1, refresh: 7200, retry: 900, expire: 1_209_600, minimum: 3600 }
    }

    /// Sets the serial, returning the modified SOA.
    #[must_use]
    pub fn with_serial(mut self, serial: u32) -> Self {
        self.serial = serial;
        self
    }
}

impl fmt::Display for Soa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {}",
            self.mname,
            self.rname,
            self.serial,
            self.refresh,
            self.retry,
            self.expire,
            self.minimum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let soa = Soa::new("ns1.x".parse().unwrap(), "hostmaster.x".parse().unwrap());
        assert_eq!(soa.serial, 1);
        assert!(soa.expire > soa.refresh);
        assert_eq!(soa.with_serial(42).serial, 42);
    }

    #[test]
    fn display_lists_all_fields() {
        let soa = Soa::new("ns1.x".parse().unwrap(), "hm.x".parse().unwrap());
        let s = soa.to_string();
        assert!(s.starts_with("ns1.x hm.x 1 "));
        assert_eq!(s.split_whitespace().count(), 7);
    }
}
