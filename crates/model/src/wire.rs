//! RFC 1035 wire-format encoding and decoding, with name compression.
//!
//! The simulated network transports [`Message`] values directly, but the
//! traffic accounting in the measurement pipeline reports realistic byte
//! volumes, and that requires encoding messages the way a real server
//! would — including compression pointers, which dominate the size of NS
//! answers. Round-tripping through this codec is also one of the model's
//! property-test surfaces.
//!
//! ```
//! use govdns_model::{Message, RecordType, wire};
//! let q = Message::query(9, "portal.gov.example".parse()?, RecordType::Ns);
//! let bytes = wire::encode(&q);
//! let back = wire::decode(&bytes)?;
//! assert_eq!(back, q);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{BufMut, Bytes, BytesMut};

use crate::{
    DomainName, Label, Message, MessageKind, ModelError, Question, Rcode, RecordData, RecordType,
    ResourceRecord, Soa,
};

const FLAG_QR: u16 = 1 << 15;
const FLAG_AA: u16 = 1 << 10;
const FLAG_TC: u16 = 1 << 9;
const CLASS_IN: u16 = 1;
const POINTER_MASK: u8 = 0b1100_0000;

/// Encodes a message to wire format with name compression.
pub fn encode(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(512);
    let mut compress: HashMap<DomainName, u16> = HashMap::new();

    buf.put_u16(msg.id);
    let mut flags = 0u16;
    if msg.kind == MessageKind::Response {
        flags |= FLAG_QR;
    }
    if msg.aa {
        flags |= FLAG_AA;
    }
    if msg.tc {
        flags |= FLAG_TC;
    }
    flags |= u16::from(msg.rcode.code());
    buf.put_u16(flags);
    buf.put_u16(1); // qdcount
    buf.put_u16(msg.answers.len() as u16);
    buf.put_u16(msg.authority.len() as u16);
    buf.put_u16(msg.additional.len() as u16);

    encode_name(&mut buf, &msg.question.name, &mut compress);
    buf.put_u16(msg.question.rtype.code());
    buf.put_u16(CLASS_IN);

    for rr in msg.answers.iter().chain(&msg.authority).chain(&msg.additional) {
        encode_record(&mut buf, rr, &mut compress);
    }
    buf.freeze()
}

/// Size in bytes of the encoded form of `msg`.
pub fn encoded_len(msg: &Message) -> usize {
    encode(msg).len()
}

fn encode_name(buf: &mut BytesMut, name: &DomainName, compress: &mut HashMap<DomainName, u16>) {
    let labels = name.labels();
    for i in 0..labels.len() {
        let suffix = name.suffix(labels.len() - i);
        if let Some(&off) = compress.get(&suffix) {
            buf.put_u16(0xC000 | off);
            return;
        }
        // Pointers can only address the first 16 KiB - 2 bits of a message.
        if buf.len() < 0x3FFF {
            compress.insert(suffix, buf.len() as u16);
        }
        let l = labels[i].as_str().as_bytes();
        buf.put_u8(l.len() as u8);
        buf.put_slice(l);
    }
    buf.put_u8(0);
}

fn encode_record(buf: &mut BytesMut, rr: &ResourceRecord, compress: &mut HashMap<DomainName, u16>) {
    encode_name(buf, &rr.name, compress);
    buf.put_u16(rr.rtype().code());
    buf.put_u16(CLASS_IN);
    buf.put_u32(rr.ttl);
    let len_pos = buf.len();
    buf.put_u16(0); // rdlength placeholder
    let rdata_start = buf.len();
    match &rr.data {
        RecordData::A(a) => buf.put_slice(&a.octets()),
        RecordData::Aaaa(a) => buf.put_slice(&a.octets()),
        RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => {
            encode_name(buf, n, compress)
        }
        RecordData::Soa(soa) => {
            encode_name(buf, &soa.mname, compress);
            encode_name(buf, &soa.rname, compress);
            buf.put_u32(soa.serial);
            buf.put_u32(soa.refresh);
            buf.put_u32(soa.retry);
            buf.put_u32(soa.expire);
            buf.put_u32(soa.minimum);
        }
        RecordData::Txt(t) => {
            // Character-strings of up to 255 bytes each.
            for chunk in t.as_bytes().chunks(255) {
                buf.put_u8(chunk.len() as u8);
                buf.put_slice(chunk);
            }
            if t.is_empty() {
                buf.put_u8(0);
            }
        }
    }
    let rdlen = (buf.len() - rdata_start) as u16;
    buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
}

/// Decodes a wire-format message.
///
/// # Errors
///
/// Returns a [`ModelError`] if the buffer is truncated, a compression
/// pointer is malformed, or a record type/rdata is invalid.
pub fn decode(bytes: &[u8]) -> Result<Message, ModelError> {
    let mut cur = Cursor { data: bytes, pos: 0 };
    let id = cur.u16()?;
    let flags = cur.u16()?;
    let qd = cur.u16()?;
    let an = cur.u16()?;
    let ns = cur.u16()?;
    let ar = cur.u16()?;
    if qd != 1 {
        return Err(ModelError::TruncatedWire);
    }
    let qname = cur.name()?;
    let qtype_code = cur.u16()?;
    let qtype =
        RecordType::from_code(qtype_code).ok_or(ModelError::UnknownRecordType(qtype_code))?;
    let _class = cur.u16()?;

    let mut msg = Message {
        id,
        kind: if flags & FLAG_QR != 0 { MessageKind::Response } else { MessageKind::Query },
        aa: flags & FLAG_AA != 0,
        tc: flags & FLAG_TC != 0,
        rcode: Rcode::from_code((flags & 0x0F) as u8).ok_or(ModelError::TruncatedWire)?,
        question: Question { name: qname, rtype: qtype },
        answers: Vec::with_capacity(an as usize),
        authority: Vec::with_capacity(ns as usize),
        additional: Vec::with_capacity(ar as usize),
    };
    for _ in 0..an {
        let rr = cur.record()?;
        msg.answers.push(rr);
    }
    for _ in 0..ns {
        let rr = cur.record()?;
        msg.authority.push(rr);
    }
    for _ in 0..ar {
        let rr = cur.record()?;
        msg.additional.push(rr);
    }
    Ok(msg)
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, ModelError> {
        let b = *self.data.get(self.pos).ok_or(ModelError::TruncatedWire)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ModelError> {
        let hi = self.u8()?;
        let lo = self.u8()?;
        Ok(u16::from_be_bytes([hi, lo]))
    }

    fn u32(&mut self) -> Result<u32, ModelError> {
        let a = self.u16()?;
        let b = self.u16()?;
        Ok((u32::from(a) << 16) | u32::from(b))
    }

    fn slice(&mut self, len: usize) -> Result<&[u8], ModelError> {
        let end = self.pos.checked_add(len).ok_or(ModelError::TruncatedWire)?;
        let s = self.data.get(self.pos..end).ok_or(ModelError::TruncatedWire)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a (possibly compressed) name starting at the cursor.
    fn name(&mut self) -> Result<DomainName, ModelError> {
        let mut labels = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 256 {
                return Err(ModelError::BadCompressionPointer(pos as u16));
            }
            let len = *self.data.get(pos).ok_or(ModelError::TruncatedWire)?;
            if len & POINTER_MASK == POINTER_MASK {
                let lo = *self.data.get(pos + 1).ok_or(ModelError::TruncatedWire)?;
                let target = (u16::from(len & !POINTER_MASK) << 8) | u16::from(lo);
                if usize::from(target) >= pos {
                    // Forward pointers would allow loops.
                    return Err(ModelError::BadCompressionPointer(target));
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                pos = usize::from(target);
                continue;
            }
            if len & POINTER_MASK != 0 {
                return Err(ModelError::BadCompressionPointer(pos as u16));
            }
            if len == 0 {
                if !jumped {
                    self.pos = pos + 1;
                }
                break;
            }
            let start = pos + 1;
            let end = start + usize::from(len);
            let raw = self.data.get(start..end).ok_or(ModelError::TruncatedWire)?;
            let text =
                std::str::from_utf8(raw).map_err(|_| ModelError::InvalidCharacter('\u{FFFD}'))?;
            labels.push(Label::new(text)?);
            pos = end;
        }
        DomainName::from_labels(labels)
    }

    fn record(&mut self) -> Result<ResourceRecord, ModelError> {
        let name = self.name()?;
        let code = self.u16()?;
        let rtype = RecordType::from_code(code).ok_or(ModelError::UnknownRecordType(code))?;
        let _class = self.u16()?;
        let ttl = self.u32()?;
        let rdlen = usize::from(self.u16()?);
        let rdata_end = self.pos + rdlen;
        let data = match rtype {
            RecordType::A => {
                let o = self.slice(4)?;
                if rdlen != 4 {
                    return Err(ModelError::BadRdataLength { rtype: code, len: rdlen });
                }
                RecordData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(ModelError::BadRdataLength { rtype: code, len: rdlen });
                }
                let o = self.slice(16)?;
                let mut oct = [0u8; 16];
                oct.copy_from_slice(o);
                RecordData::Aaaa(Ipv6Addr::from(oct))
            }
            RecordType::Ns => RecordData::Ns(self.name()?),
            RecordType::Cname => RecordData::Cname(self.name()?),
            RecordType::Ptr => RecordData::Ptr(self.name()?),
            RecordType::Soa => {
                let mname = self.name()?;
                let rname = self.name()?;
                let serial = self.u32()?;
                let refresh = self.u32()?;
                let retry = self.u32()?;
                let expire = self.u32()?;
                let minimum = self.u32()?;
                RecordData::Soa(Soa { mname, rname, serial, refresh, retry, expire, minimum })
            }
            RecordType::Txt => {
                let mut text = String::new();
                while self.pos < rdata_end {
                    let len = usize::from(self.u8()?);
                    let chunk = self.slice(len)?;
                    text.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| ModelError::InvalidCharacter('\u{FFFD}'))?,
                    );
                }
                RecordData::Txt(text)
            }
        };
        if self.pos != rdata_end {
            return Err(ModelError::BadRdataLength { rtype: code, len: rdlen });
        }
        Ok(ResourceRecord { name, ttl, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RrSet;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn roundtrip(msg: &Message) {
        let bytes = encode(msg);
        let back = decode(&bytes).expect("decode");
        assert_eq!(&back, msg);
    }

    #[test]
    fn query_roundtrip() {
        roundtrip(&Message::query(1234, n("www.portal.gov.example"), RecordType::Ns));
    }

    #[test]
    fn answer_roundtrip_all_types() {
        let q = Message::query(7, n("x.gov.example"), RecordType::Ns);
        let mut r = q.response().authoritative();
        r.answers = vec![
            ResourceRecord::new(n("x.gov.example"), 60, RecordData::Ns(n("ns1.x.gov.example"))),
            ResourceRecord::new(
                n("x.gov.example"),
                60,
                RecordData::A("192.0.2.7".parse().unwrap()),
            ),
            ResourceRecord::new(
                n("x.gov.example"),
                60,
                RecordData::Aaaa("2001:db8::7".parse().unwrap()),
            ),
            ResourceRecord::new(n("x.gov.example"), 60, RecordData::Txt("hello world".into())),
            ResourceRecord::new(n("x.gov.example"), 60, RecordData::Cname(n("y.gov.example"))),
            ResourceRecord::new(n("x.gov.example"), 60, RecordData::Ptr(n("host.gov.example"))),
            ResourceRecord::new(
                n("x.gov.example"),
                60,
                RecordData::Soa(Soa::new(n("ns1.x.gov.example"), n("hm.x.gov.example"))),
            ),
        ];
        roundtrip(&r);
    }

    #[test]
    fn referral_roundtrip_with_glue() {
        let q = Message::query(9, n("deep.portal.gov.example"), RecordType::A);
        let mut ns = RrSet::new(n("portal.gov.example"), RecordType::Ns, 300);
        ns.push(RecordData::Ns(n("ns1.portal.gov.example")));
        ns.push(RecordData::Ns(n("ns2.portal.gov.example")));
        let r = q.response().with_authority(&ns).with_additional(ResourceRecord::new(
            n("ns1.portal.gov.example"),
            300,
            RecordData::A("198.51.100.1".parse().unwrap()),
        ));
        roundtrip(&r);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(9, n("portal.gov.example"), RecordType::Ns);
        let mut ns = RrSet::new(n("portal.gov.example"), RecordType::Ns, 300);
        for i in 1..=4 {
            ns.push(RecordData::Ns(format!("ns{i}.portal.gov.example").parse().unwrap()));
        }
        let r = q.response().authoritative().with_answer(&ns);
        let compressed = encode(&r).len();
        // Uncompressed, each of the 4 answers would repeat the 20-byte
        // owner name and the 20+ byte target suffix.
        let uncompressed_estimate = 12
            + r.question.name.wire_len()
            + 4
            + r.answers
                .iter()
                .map(|rr| rr.name.wire_len() + 10 + rr.data.as_ns().unwrap().wire_len())
                .sum::<usize>();
        assert!(
            compressed < uncompressed_estimate * 2 / 3,
            "compressed {compressed} not < 2/3 of {uncompressed_estimate}"
        );
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&Message::query(1, n("a.b.c"), RecordType::A));
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_forward_pointer() {
        // Header + a name that is just a pointer to itself.
        let mut bad = vec![0u8, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bad.extend_from_slice(&[0xC0, 12]); // pointer to offset 12 = itself
        bad.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(decode(&bad), Err(ModelError::BadCompressionPointer(_))));
    }

    #[test]
    fn empty_txt_roundtrips() {
        let q = Message::query(3, n("t.gov.example"), RecordType::Txt);
        let mut r = q.response().authoritative();
        r.answers =
            vec![ResourceRecord::new(n("t.gov.example"), 60, RecordData::Txt(String::new()))];
        roundtrip(&r);
    }

    #[test]
    fn long_txt_roundtrips() {
        let q = Message::query(3, n("t.gov.example"), RecordType::Txt);
        let mut r = q.response().authoritative();
        r.answers =
            vec![ResourceRecord::new(n("t.gov.example"), 60, RecordData::Txt("x".repeat(700)))];
        roundtrip(&r);
    }

    #[test]
    fn root_name_roundtrips() {
        roundtrip(&Message::query(2, DomainName::root(), RecordType::Ns));
    }
}
