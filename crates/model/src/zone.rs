use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::{DomainName, RecordData, RecordType, RrSet, Soa, Ttl};

const DEFAULT_TTL: Ttl = 3600;

/// The outcome of looking a name/type up in an authoritative zone.
///
/// This mirrors the decision an authoritative server makes when composing a
/// response: the distinction between an authoritative answer and a referral
/// at a zone cut is precisely what the study's Figure-1 measurement client
/// drives on (step ② is a referral from the parent; step ④ an authoritative
/// answer from the child).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// The zone is authoritative for the name and holds the RRset.
    Answer(RrSet),
    /// The name lies at or below a delegation: here are the NS records of
    /// the closest enclosing cut, plus any in-zone glue addresses.
    Referral {
        /// The delegation point (owner of the NS RRset).
        cut: DomainName,
        /// The delegation NS RRset as stored in the parent.
        ns: RrSet,
        /// Glue A records for NS targets that live under the cut.
        glue: Vec<(DomainName, Ipv4Addr)>,
    },
    /// The name exists but carries no RRset of the requested type.
    NoData,
    /// The name does not exist in the zone.
    NxDomain,
    /// The name is not within this zone's origin at all.
    OutOfZone,
}

/// An authoritative DNS zone: an origin plus the records at and below it,
/// with delegation (zone-cut) semantics on lookup.
///
/// Records are held per owner name, per type, as [`RrSet`]s. NS RRsets at
/// names strictly below the origin define zone cuts; lookups at or beneath
/// a cut yield [`ZoneLookup::Referral`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    origin: DomainName,
    records: BTreeMap<DomainName, BTreeMap<RecordType, RrSet>>,
}

impl Zone {
    /// Creates an empty zone rooted at `origin`.
    pub fn new(origin: DomainName) -> Self {
        Zone { origin, records: BTreeMap::new() }
    }

    /// The zone origin (apex name).
    pub fn origin(&self) -> &DomainName {
        &self.origin
    }

    /// Adds one piece of rdata at `name` with the default TTL.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not within the zone origin; callers construct
    /// zones programmatically and out-of-zone data is a builder bug.
    pub fn add(&mut self, name: DomainName, data: RecordData) {
        self.add_with_ttl(name, DEFAULT_TTL, data);
    }

    /// Adds one piece of rdata at `name` with an explicit TTL.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not within the zone origin.
    pub fn add_with_ttl(&mut self, name: DomainName, ttl: Ttl, data: RecordData) {
        assert!(name.is_within(&self.origin), "record owner {name} outside zone {}", self.origin);
        let rtype = data.rtype();
        self.records
            .entry(name.clone())
            .or_default()
            .entry(rtype)
            .or_insert_with(|| RrSet::new(name, rtype, ttl))
            .push(data);
    }

    /// Convenience: adds an NS record delegating (or serving) `name`.
    pub fn add_ns(&mut self, name: DomainName, target: DomainName) {
        self.add(name, RecordData::Ns(target));
    }

    /// Convenience: adds an A record.
    pub fn add_a(&mut self, name: DomainName, addr: Ipv4Addr) {
        self.add(name, RecordData::A(addr));
    }

    /// Convenience: adds a glue A record for an in-zone NS target.
    pub fn add_glue(&mut self, name: DomainName, addr: Ipv4Addr) {
        self.add_a(name, addr);
    }

    /// Sets the apex SOA (replacing any previous one).
    pub fn set_soa(&mut self, soa: Soa) {
        let apex = self.origin.clone();
        let mut set = RrSet::new(apex.clone(), RecordType::Soa, DEFAULT_TTL);
        set.push(RecordData::Soa(soa));
        self.records.entry(apex).or_default().insert(RecordType::Soa, set);
    }

    /// The apex SOA, if one is configured.
    pub fn soa(&self) -> Option<&Soa> {
        self.rrset(&self.origin, RecordType::Soa)?.iter().next()?.as_soa()
    }

    /// The RRset at exactly `name`/`rtype`, ignoring zone cuts.
    pub fn rrset(&self, name: &DomainName, rtype: RecordType) -> Option<&RrSet> {
        self.records.get(name)?.get(&rtype)
    }

    /// Whether any RRset exists at exactly `name`.
    pub fn has_name(&self, name: &DomainName) -> bool {
        self.records.contains_key(name)
    }

    /// Iterates over all `(owner, rrset)` pairs in the zone.
    pub fn iter(&self) -> impl Iterator<Item = &RrSet> {
        self.records.values().flat_map(|by_type| by_type.values())
    }

    /// Number of RRsets in the zone.
    pub fn rrset_count(&self) -> usize {
        self.records.values().map(BTreeMap::len).sum()
    }

    /// The delegation points of this zone: owners of NS RRsets strictly
    /// below the origin, in name order.
    pub fn delegations(&self) -> impl Iterator<Item = &RrSet> {
        self.records.iter().filter_map(move |(name, by_type)| {
            if *name == self.origin {
                None
            } else {
                by_type.get(&RecordType::Ns)
            }
        })
    }

    /// Finds the closest enclosing zone cut strictly above or at `name`
    /// (and strictly below the origin), if any.
    fn closest_cut(&self, name: &DomainName) -> Option<&RrSet> {
        // Walk from the cut closest to the origin downwards would also
        // work; we walk ancestors from `name` up and keep the *last* match
        // below origin — but the correct referral is the *highest* cut
        // (closest to the origin) because data below a cut is occluded.
        let mut best: Option<&RrSet> = None;
        for anc in name.ancestors() {
            if anc == self.origin || !anc.is_within(&self.origin) {
                break;
            }
            if let Some(ns) = self.rrset(&anc, RecordType::Ns) {
                best = Some(ns);
            }
        }
        best
    }

    /// Authoritative lookup with zone-cut semantics. See [`ZoneLookup`].
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> ZoneLookup {
        if !name.is_within(&self.origin) {
            return ZoneLookup::OutOfZone;
        }
        if let Some(ns) = self.closest_cut(name) {
            // Asking the parent for NS of the cut itself is still a
            // referral (non-authoritative), which is exactly what the
            // measurement pipeline's step ② consumes.
            let cut = ns.name().clone();
            let glue = self.glue_for(ns);
            return ZoneLookup::Referral { cut, ns: ns.clone(), glue };
        }
        match self.records.get(name) {
            Some(by_type) => match by_type.get(&rtype) {
                Some(set) => ZoneLookup::Answer(set.clone()),
                None => match by_type.get(&RecordType::Cname) {
                    // A CNAME at the name answers any type (except CNAME,
                    // handled above when rtype == Cname).
                    Some(cname) if rtype != RecordType::Cname => ZoneLookup::Answer(cname.clone()),
                    _ => ZoneLookup::NoData,
                },
            },
            None => {
                // An "empty non-terminal": the name has no records but
                // names exist beneath it, so it is NoData, not NXDOMAIN.
                // Names sort by presentation-order labels, which does not
                // group subdomains together, so this is a scan; zones in
                // the simulation are small enough for that to be cheap.
                if self.records.keys().any(|k| k.is_subdomain_of(name)) {
                    ZoneLookup::NoData
                } else {
                    ZoneLookup::NxDomain
                }
            }
        }
    }

    fn glue_for(&self, ns: &RrSet) -> Vec<(DomainName, Ipv4Addr)> {
        let mut glue = Vec::new();
        for target in ns.ns_targets() {
            if !target.is_within(&self.origin) {
                continue;
            }
            if let Some(a_set) = self.records.get(target).and_then(|t| t.get(&RecordType::A)) {
                for d in a_set.iter() {
                    if let Some(addr) = d.as_a() {
                        glue.push((target.clone(), addr));
                    }
                }
            }
        }
        glue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(n("gov.example"));
        z.set_soa(Soa::new(n("ns1.gov.example"), n("hostmaster.gov.example")));
        z.add_ns(n("gov.example"), n("ns1.gov.example"));
        z.add_ns(n("gov.example"), n("ns2.gov.example"));
        z.add_a(n("ns1.gov.example"), Ipv4Addr::new(192, 0, 2, 1));
        z.add_a(n("www.gov.example"), Ipv4Addr::new(192, 0, 2, 80));
        // Delegation to a child zone, with glue.
        z.add_ns(n("portal.gov.example"), n("ns1.portal.gov.example"));
        z.add_glue(n("ns1.portal.gov.example"), Ipv4Addr::new(198, 51, 100, 1));
        z
    }

    #[test]
    fn answers_in_zone_data() {
        let z = sample_zone();
        match z.lookup(&n("www.gov.example"), RecordType::A) {
            ZoneLookup::Answer(set) => assert_eq!(set.len(), 1),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn apex_ns_is_an_answer_not_a_referral() {
        let z = sample_zone();
        match z.lookup(&n("gov.example"), RecordType::Ns) {
            ZoneLookup::Answer(set) => assert_eq!(set.len(), 2),
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn delegation_yields_referral_with_glue() {
        let z = sample_zone();
        for q in ["portal.gov.example", "www.portal.gov.example", "a.b.portal.gov.example"] {
            match z.lookup(&n(q), RecordType::A) {
                ZoneLookup::Referral { cut, ns, glue } => {
                    assert_eq!(cut, n("portal.gov.example"));
                    assert_eq!(ns.len(), 1);
                    assert_eq!(
                        glue,
                        vec![(n("ns1.portal.gov.example"), Ipv4Addr::new(198, 51, 100, 1))]
                    );
                }
                other => panic!("expected referral for {q}, got {other:?}"),
            }
        }
    }

    #[test]
    fn ns_query_at_cut_is_a_referral() {
        let z = sample_zone();
        assert!(matches!(
            z.lookup(&n("portal.gov.example"), RecordType::Ns),
            ZoneLookup::Referral { .. }
        ));
    }

    #[test]
    fn missing_name_is_nxdomain() {
        let z = sample_zone();
        assert_eq!(z.lookup(&n("absent.gov.example"), RecordType::A), ZoneLookup::NxDomain);
    }

    #[test]
    fn existing_name_wrong_type_is_nodata() {
        let z = sample_zone();
        assert_eq!(z.lookup(&n("www.gov.example"), RecordType::Txt), ZoneLookup::NoData);
    }

    #[test]
    fn empty_non_terminal_is_nodata() {
        let mut z = Zone::new(n("gov.example"));
        z.add_a(n("a.b.gov.example"), Ipv4Addr::new(192, 0, 2, 9));
        assert_eq!(z.lookup(&n("b.gov.example"), RecordType::A), ZoneLookup::NoData);
    }

    #[test]
    fn out_of_zone_is_flagged() {
        let z = sample_zone();
        assert_eq!(z.lookup(&n("example.net"), RecordType::A), ZoneLookup::OutOfZone);
    }

    #[test]
    fn cname_answers_other_types() {
        let mut z = Zone::new(n("gov.example"));
        z.add(n("alias.gov.example"), RecordData::Cname(n("www.gov.example")));
        match z.lookup(&n("alias.gov.example"), RecordType::A) {
            ZoneLookup::Answer(set) => assert_eq!(set.rtype(), RecordType::Cname),
            other => panic!("expected cname answer, got {other:?}"),
        }
    }

    #[test]
    fn highest_cut_wins_for_nested_delegations() {
        let mut z = sample_zone();
        // Data *below* the portal cut is occluded, even NS data.
        z.add_ns(n("deep.portal.gov.example"), n("ns.elsewhere.example"));
        match z.lookup(&n("x.deep.portal.gov.example"), RecordType::A) {
            ZoneLookup::Referral { cut, .. } => assert_eq!(cut, n("portal.gov.example")),
            other => panic!("expected referral, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn rejects_out_of_zone_insert() {
        let mut z = Zone::new(n("gov.example"));
        z.add_a(n("other.example"), Ipv4Addr::new(192, 0, 2, 1));
    }

    #[test]
    fn soa_accessor() {
        let z = sample_zone();
        assert_eq!(z.soa().unwrap().mname, n("ns1.gov.example"));
    }

    #[test]
    fn delegations_lists_cuts_only() {
        let z = sample_zone();
        let cuts: Vec<String> = z.delegations().map(|s| s.name().to_string()).collect();
        assert_eq!(cuts, vec!["portal.gov.example"]);
    }
}
