use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::{DomainName, Soa};

/// Time-to-live of a resource record, in seconds.
pub type Ttl = u32;

/// The record types the study's pipeline queries or observes.
///
/// Wire codes follow RFC 1035 / RFC 3596.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Authoritative nameserver record — the study's main subject.
    Ns,
    /// Canonical-name alias.
    Cname,
    /// Start-of-authority; its MNAME/RNAME fields feed provider
    /// classification.
    Soa,
    /// Reverse-pointer record (the measurement host publishes one).
    Ptr,
    /// Free-form text record.
    Txt,
    /// IPv6 address record.
    Aaaa,
}

impl RecordType {
    /// The RFC wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
        }
    }

    /// Decodes a wire code, if it is a type this model supports.
    pub fn from_code(code: u16) -> Option<RecordType> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            _ => return None,
        })
    }

    /// All supported types, in wire-code order.
    pub fn all() -> [RecordType; 7] {
        [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Txt,
            RecordType::Aaaa,
        ]
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Ptr => "PTR",
            RecordType::Txt => "TXT",
            RecordType::Aaaa => "AAAA",
        };
        f.write_str(s)
    }
}

/// Typed rdata for a [`ResourceRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An authoritative nameserver hostname.
    Ns(DomainName),
    /// An alias target.
    Cname(DomainName),
    /// Start-of-authority payload.
    Soa(Soa),
    /// A reverse-pointer target.
    Ptr(DomainName),
    /// Text payload.
    Txt(String),
    /// An IPv6 address.
    Aaaa(Ipv6Addr),
}

impl RecordData {
    /// The record type this data belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Soa(_) => RecordType::Soa,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Aaaa(_) => RecordType::Aaaa,
        }
    }

    /// The NS target, if this is an NS record.
    pub fn as_ns(&self) -> Option<&DomainName> {
        match self {
            RecordData::Ns(n) => Some(n),
            _ => None,
        }
    }

    /// The IPv4 address, if this is an A record.
    pub fn as_a(&self) -> Option<Ipv4Addr> {
        match self {
            RecordData::A(a) => Some(*a),
            _ => None,
        }
    }

    /// The SOA payload, if this is an SOA record.
    pub fn as_soa(&self) -> Option<&Soa> {
        match self {
            RecordData::Soa(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for RecordData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordData::A(a) => write!(f, "{a}"),
            RecordData::Ns(n) => write!(f, "{n}"),
            RecordData::Cname(n) => write!(f, "{n}"),
            RecordData::Soa(s) => write!(f, "{s}"),
            RecordData::Ptr(n) => write!(f, "{n}"),
            RecordData::Txt(t) => write!(f, "\"{t}\""),
            RecordData::Aaaa(a) => write!(f, "{a}"),
        }
    }
}

/// A single DNS resource record: owner name, TTL, and typed rdata.
///
/// ```
/// use govdns_model::{ResourceRecord, RecordData, RecordType};
/// let rr = ResourceRecord::new(
///     "portal.gov.example".parse()?,
///     3600,
///     RecordData::Ns("ns1.dns-provider.example".parse()?),
/// );
/// assert_eq!(rr.rtype(), RecordType::Ns);
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// The owner name the record is attached to.
    pub name: DomainName,
    /// Time-to-live in seconds.
    pub ttl: Ttl,
    /// The typed record payload.
    pub data: RecordData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: DomainName, ttl: Ttl, data: RecordData) -> Self {
        ResourceRecord { name, ttl, data }
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.data.rtype()
    }
}

impl fmt::Display for ResourceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} IN {} {}", self.name, self.ttl, self.rtype(), self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for t in RecordType::all() {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn data_type_agreement() {
        let d = RecordData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(d.rtype(), RecordType::A);
        assert_eq!(d.as_a(), Some(Ipv4Addr::new(192, 0, 2, 1)));
        assert!(d.as_ns().is_none());
    }

    #[test]
    fn display_is_zone_file_like() {
        let rr = ResourceRecord::new(
            "x.gov.example".parse().unwrap(),
            300,
            RecordData::Ns("ns1.gov.example".parse().unwrap()),
        );
        assert_eq!(rr.to_string(), "x.gov.example 300 IN NS ns1.gov.example");
    }
}
