//! # govdns-model
//!
//! The DNS data model underlying the govdns reproduction of the DSN 2022
//! study *"A Comprehensive, Longitudinal Study of Government DNS Deployment
//! at Global Scale"*.
//!
//! This crate provides the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`DomainName`] — a validated, case-normalized domain name with the
//!   label-level operations the measurement pipeline needs (parent, zone
//!   level, suffix tests).
//! * [`ResourceRecord`], [`RecordData`], [`RecordType`] — resource records
//!   for the types the study touches (NS, A, AAAA, SOA, CNAME, TXT, PTR).
//! * [`Zone`] — an authoritative zone with real *zone-cut* semantics: a
//!   lookup yields an authoritative answer, a referral with glue, NXDOMAIN,
//!   or NODATA exactly as an authoritative server implementation would
//!   decide it.
//! * [`Message`], [`Question`], [`Rcode`] — the query/response shapes the
//!   simulated network transports.
//! * [`wire`] — RFC 1035 wire-format encoding and decoding (with name
//!   compression), so the simulated traffic accounting measures realistic
//!   byte volumes.
//! * [`SimDate`] — a chrono-free civil date used for the 2011–2020
//!   longitudinal timeline.
//!
//! ## Example
//!
//! ```
//! use govdns_model::{DomainName, Zone, RecordData, ZoneLookup};
//!
//! # fn main() -> Result<(), govdns_model::ModelError> {
//! let origin: DomainName = "gov.example".parse()?;
//! let mut zone = Zone::new(origin.clone());
//! let child: DomainName = "portal.gov.example".parse()?;
//! let ns: DomainName = "ns1.portal.gov.example".parse()?;
//! zone.add_ns(child.clone(), ns.clone());
//! zone.add_glue(ns, "192.0.2.1".parse().unwrap());
//!
//! // A query below the delegation point yields a referral, not an answer.
//! let q: DomainName = "www.portal.gov.example".parse()?;
//! match zone.lookup(&q, govdns_model::RecordType::A) {
//!     ZoneLookup::Referral { cut, .. } => assert_eq!(cut, child),
//!     other => panic!("expected referral, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod date;
mod error;
mod message;
mod name;
mod record;
mod rrset;
mod soa;
pub mod wire;
mod zone;
pub mod zonefile;

pub use date::{DateRange, SimDate, Year, DAYS_PER_WEEK};
pub use error::ModelError;
pub use message::{Message, MessageKind, Question, Rcode};
pub use name::{DomainName, Label, MAX_LABELS, MAX_NAME_LEN};
pub use record::{RecordData, RecordType, ResourceRecord, Ttl};
pub use rrset::RrSet;
pub use soa::Soa;
pub use zone::{Zone, ZoneLookup};
