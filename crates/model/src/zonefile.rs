//! RFC 1035 §5 master-file (zone file) parsing and serialization — the
//! text format zones are exchanged in, and the place the paper's
//! relative-name bug is born: a missing trailing dot turns an absolute
//! name into a relative one (or, the paper's case, a stray dot turns a
//! relative `ns` into an absolute single-label name).
//!
//! The supported subset covers what government zone files in the study
//! contain: `$ORIGIN`, `$TTL`, comments, A/AAAA/NS/CNAME/PTR/TXT/SOA
//! records, relative and absolute names, and `@` for the origin.
//!
//! ```
//! use govdns_model::zonefile;
//!
//! let text = "\
//! $ORIGIN gov.zz.
//! $TTL 3600
//! @        IN NS  ns1
//! ns1      IN A   192.0.2.1
//! portal   IN NS  ns1.portal
//! ns1.portal IN A 198.51.100.1
//! ";
//! let zone = zonefile::parse(text)?;
//! assert_eq!(zone.origin().to_string(), "gov.zz");
//! assert_eq!(zone.rrset_count(), 4);
//! # Ok::<(), zonefile::ZoneFileError>(())
//! ```

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::{DomainName, ModelError, RecordData, Soa, Ttl, Zone};

/// Errors produced while parsing a master file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZoneFileError {
    /// No `$ORIGIN` directive and no absolute owner to infer a zone from.
    MissingOrigin,
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A name failed validation.
    BadName {
        /// 1-based line number.
        line: usize,
        /// The underlying error.
        source: ModelError,
    },
    /// A record owner fell outside the zone origin.
    OutOfZone {
        /// 1-based line number.
        line: usize,
        /// The offending owner.
        owner: String,
    },
}

impl fmt::Display for ZoneFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneFileError::MissingOrigin => write!(f, "zone file has no $ORIGIN"),
            ZoneFileError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ZoneFileError::BadName { line, source } => {
                write!(f, "invalid name on line {line}: {source}")
            }
            ZoneFileError::OutOfZone { line, owner } => {
                write!(f, "owner {owner} on line {line} is outside the zone origin")
            }
        }
    }
}

impl std::error::Error for ZoneFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZoneFileError::BadName { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Strips a trailing comment (a `;` outside of quotes).
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Resolves a presentation-format name against the origin: `@` is the
/// origin, a trailing dot means absolute, anything else is relative.
fn resolve_name(
    token: &str,
    origin: &DomainName,
    line: usize,
) -> Result<DomainName, ZoneFileError> {
    if token == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = token.strip_suffix('.') {
        return absolute.parse().map_err(|source| ZoneFileError::BadName { line, source });
    }
    // Relative: append the origin.
    let combined = if origin.is_root() { token.to_owned() } else { format!("{token}.{origin}") };
    combined.parse().map_err(|source| ZoneFileError::BadName { line, source })
}

/// Parses a master file into a [`Zone`].
///
/// # Errors
///
/// See [`ZoneFileError`]. The first `$ORIGIN` determines the zone's
/// origin and must precede any record.
pub fn parse(text: &str) -> Result<Zone, ZoneFileError> {
    let mut origin: Option<DomainName> = None;
    let mut default_ttl: Ttl = 3600;
    let mut zone: Option<Zone> = None;
    let mut last_owner: Option<DomainName> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.trim().is_empty() {
            continue;
        }
        let starts_with_space = line.starts_with(' ') || line.starts_with('\t');
        let mut tokens: Vec<&str> = line.split_whitespace().collect();

        // Directives.
        match tokens.first().copied() {
            Some("$ORIGIN") => {
                let Some(name) = tokens.get(1) else {
                    return Err(ZoneFileError::Syntax {
                        line: line_no,
                        message: "$ORIGIN needs a name".into(),
                    });
                };
                let name: DomainName = name
                    .trim_end_matches('.')
                    .parse()
                    .map_err(|source| ZoneFileError::BadName { line: line_no, source })?;
                if origin.is_none() {
                    zone = Some(Zone::new(name.clone()));
                }
                origin = Some(name);
                continue;
            }
            Some("$TTL") => {
                let Some(val) = tokens.get(1).and_then(|t| t.parse::<Ttl>().ok()) else {
                    return Err(ZoneFileError::Syntax {
                        line: line_no,
                        message: "$TTL needs a number of seconds".into(),
                    });
                };
                default_ttl = val;
                continue;
            }
            _ => {}
        }

        let origin_ref = origin.as_ref().ok_or(ZoneFileError::MissingOrigin)?;

        // Owner: either the first token, or (for continuation lines that
        // start with whitespace) the previous owner.
        let owner = if starts_with_space {
            last_owner.clone().ok_or_else(|| ZoneFileError::Syntax {
                line: line_no,
                message: "record with no owner and no previous owner".into(),
            })?
        } else {
            let owner_token = tokens.remove(0);
            resolve_name(owner_token, origin_ref, line_no)?
        };
        last_owner = Some(owner.clone());

        // Optional TTL and class tokens, in either order.
        let mut ttl = default_ttl;
        while let Some(&tok) = tokens.first() {
            if tok.eq_ignore_ascii_case("IN") {
                tokens.remove(0);
            } else if let Ok(t) = tok.parse::<Ttl>() {
                ttl = t;
                tokens.remove(0);
            } else {
                break;
            }
        }

        let Some(rtype_token) = tokens.first().copied() else {
            return Err(ZoneFileError::Syntax {
                line: line_no,
                message: "missing record type".into(),
            });
        };
        tokens.remove(0);
        let rdata_err =
            |message: &str| ZoneFileError::Syntax { line: line_no, message: message.to_owned() };

        let data = match rtype_token.to_ascii_uppercase().as_str() {
            "A" => {
                let addr: Ipv4Addr = tokens
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| rdata_err("A record needs an IPv4 address"))?;
                RecordData::A(addr)
            }
            "AAAA" => {
                let addr: Ipv6Addr = tokens
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| rdata_err("AAAA record needs an IPv6 address"))?;
                RecordData::Aaaa(addr)
            }
            "NS" => {
                let target = tokens.first().ok_or_else(|| rdata_err("NS needs a target"))?;
                RecordData::Ns(resolve_name(target, origin_ref, line_no)?)
            }
            "CNAME" => {
                let target = tokens.first().ok_or_else(|| rdata_err("CNAME needs a target"))?;
                RecordData::Cname(resolve_name(target, origin_ref, line_no)?)
            }
            "PTR" => {
                let target = tokens.first().ok_or_else(|| rdata_err("PTR needs a target"))?;
                RecordData::Ptr(resolve_name(target, origin_ref, line_no)?)
            }
            "TXT" => {
                // Quoted strings keep their exact whitespace; unquoted
                // rdata collapses to single spaces (it was tokenized).
                let text = match (line.find('"'), line.rfind('"')) {
                    (Some(start), Some(end)) if end > start => line[start + 1..end].to_owned(),
                    _ => tokens.join(" "),
                };
                RecordData::Txt(text)
            }
            "SOA" => {
                if tokens.len() < 7 {
                    return Err(rdata_err(
                        "SOA needs mname, rname, serial, refresh, retry, expire, minimum",
                    ));
                }
                let mname = resolve_name(tokens[0], origin_ref, line_no)?;
                let rname = resolve_name(tokens[1], origin_ref, line_no)?;
                let nums: Vec<u32> = tokens[2..7]
                    .iter()
                    .map(|t| t.parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| rdata_err("SOA timers must be integers"))?;
                RecordData::Soa(Soa {
                    mname,
                    rname,
                    serial: nums[0],
                    refresh: nums[1],
                    retry: nums[2],
                    expire: nums[3],
                    minimum: nums[4],
                })
            }
            other => {
                return Err(ZoneFileError::Syntax {
                    line: line_no,
                    message: format!("unsupported record type `{other}`"),
                })
            }
        };

        let zone_ref = zone.as_mut().expect("zone exists once origin is set");
        if !owner.is_within(zone_ref.origin()) {
            return Err(ZoneFileError::OutOfZone { line: line_no, owner: owner.to_string() });
        }
        zone_ref.add_with_ttl(owner, ttl, data);
    }

    zone.ok_or(ZoneFileError::MissingOrigin)
}

/// Serializes a zone back to master-file text (absolute names throughout,
/// so the output re-parses identically regardless of origin handling).
pub fn serialize(zone: &Zone) -> String {
    let mut out = String::new();
    out.push_str(&format!("$ORIGIN {}.\n", zone.origin()));
    for set in zone.iter() {
        for rr in set.to_records() {
            let data = match &rr.data {
                RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => {
                    format!("{n}.")
                }
                RecordData::Soa(soa) => format!(
                    "{}. {}. {} {} {} {} {}",
                    soa.mname,
                    soa.rname,
                    soa.serial,
                    soa.refresh,
                    soa.retry,
                    soa.expire,
                    soa.minimum
                ),
                RecordData::Txt(t) => format!("\"{t}\""),
                other => other.to_string(),
            };
            out.push_str(&format!("{}. {} IN {} {}\n", rr.name, rr.ttl, rr.rtype(), data));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecordType, ZoneLookup};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    const SAMPLE: &str = "\
; the gov.zz zone
$ORIGIN gov.zz.
$TTL 7200
@        IN SOA ns1 hostmaster 42 7200 900 1209600 3600
@        IN NS  ns1
@        IN NS  ns2.backup.example.
ns1      IN A   192.0.2.1
www      300 IN A 192.0.2.80
portal   IN NS  ns1.portal
ns1.portal IN A 198.51.100.1
alias    IN CNAME www
note     IN TXT \"hello ; world\"
v6       IN AAAA 2001:db8::1
";

    #[test]
    fn parses_the_kitchen_sink() {
        let zone = parse(SAMPLE).unwrap();
        assert_eq!(zone.origin(), &n("gov.zz"));
        assert_eq!(zone.soa().unwrap().serial, 42);
        // Relative and absolute NS targets both resolved.
        let apex_ns = zone.rrset(&n("gov.zz"), RecordType::Ns).unwrap();
        let targets: Vec<String> = apex_ns.ns_targets().iter().map(|t| t.to_string()).collect();
        assert!(targets.contains(&"ns1.gov.zz".to_owned()));
        assert!(targets.contains(&"ns2.backup.example".to_owned()));
        // Per-record TTL override.
        assert_eq!(zone.rrset(&n("www.gov.zz"), RecordType::A).unwrap().ttl(), 300);
        // Quoted semicolon survives; the comment line doesn't.
        let txt = zone.rrset(&n("note.gov.zz"), RecordType::Txt).unwrap();
        assert_eq!(txt.iter().next().unwrap().to_string(), "\"hello ; world\"");
        // Delegation really is a zone cut.
        assert!(matches!(
            zone.lookup(&n("x.portal.gov.zz"), RecordType::A),
            ZoneLookup::Referral { .. }
        ));
    }

    #[test]
    fn roundtrips_through_serialize() {
        let zone = parse(SAMPLE).unwrap();
        let text = serialize(&zone);
        let back = parse(&text).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn relative_name_bug_is_representable() {
        // The paper's typo: `ns.` (absolute single label) instead of `ns`
        // (relative, which would expand to ns.gov.zz).
        let buggy = "\
$ORIGIN gov.zz.
@ IN NS ns.
";
        let zone = parse(buggy).unwrap();
        let targets = zone.rrset(&n("gov.zz"), RecordType::Ns).unwrap();
        assert_eq!(targets.ns_targets()[0].to_string(), "ns");
        assert_eq!(targets.ns_targets()[0].level(), 1);

        let correct = "\
$ORIGIN gov.zz.
@ IN NS ns
";
        let zone = parse(correct).unwrap();
        let targets = zone.rrset(&n("gov.zz"), RecordType::Ns).unwrap();
        assert_eq!(targets.ns_targets()[0].to_string(), "ns.gov.zz");
    }

    #[test]
    fn continuation_lines_reuse_the_owner() {
        let text = "\
$ORIGIN gov.zz.
multi IN NS ns1
      IN NS ns2
";
        let zone = parse(text).unwrap();
        assert_eq!(zone.rrset(&n("multi.gov.zz"), RecordType::Ns).unwrap().len(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(""), Err(ZoneFileError::MissingOrigin));
        assert_eq!(parse("@ IN NS ns1\n"), Err(ZoneFileError::MissingOrigin));
        assert!(matches!(
            parse("$ORIGIN gov.zz.\n@ IN A not-an-ip\n"),
            Err(ZoneFileError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            parse("$ORIGIN gov.zz.\nother.example. IN A 192.0.2.1\n"),
            Err(ZoneFileError::OutOfZone { line: 2, .. })
        ));
        assert!(matches!(
            parse("$ORIGIN gov.zz.\n@ IN WKS whatever\n"),
            Err(ZoneFileError::Syntax { .. })
        ));
        assert!(matches!(
            parse("$ORIGIN gov.zz.\n@ IN SOA ns1 hm 1 2 3\n"),
            Err(ZoneFileError::Syntax { .. })
        ));
    }

    #[test]
    fn ttl_and_class_in_either_order() {
        let text = "\
$ORIGIN gov.zz.
a 600 IN A 192.0.2.1
b IN 600 A 192.0.2.2
c A 192.0.2.3
";
        let zone = parse(text).unwrap();
        assert_eq!(zone.rrset(&n("a.gov.zz"), RecordType::A).unwrap().ttl(), 600);
        assert_eq!(zone.rrset(&n("b.gov.zz"), RecordType::A).unwrap().ttl(), 600);
        assert_eq!(zone.rrset(&n("c.gov.zz"), RecordType::A).unwrap().ttl(), 3600);
    }
}
