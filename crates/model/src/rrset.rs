use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DomainName, RecordData, RecordType, ResourceRecord, Ttl};

/// A set of records sharing one owner name and type.
///
/// RRsets are the unit the passive-DNS database coalesces over and the unit
/// authoritative answers are assembled from. Duplicate rdata is rejected on
/// insert, matching RFC 2181 §5.
///
/// ```
/// use govdns_model::{RrSet, RecordType, RecordData};
/// let mut set = RrSet::new("gov.example".parse()?, RecordType::Ns, 3600);
/// set.push(RecordData::Ns("ns1.gov.example".parse()?));
/// set.push(RecordData::Ns("ns2.gov.example".parse()?));
/// set.push(RecordData::Ns("ns1.gov.example".parse()?)); // duplicate: ignored
/// assert_eq!(set.len(), 2);
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrSet {
    name: DomainName,
    rtype: RecordType,
    ttl: Ttl,
    rdata: Vec<RecordData>,
}

impl RrSet {
    /// Creates an empty RRset.
    pub fn new(name: DomainName, rtype: RecordType, ttl: Ttl) -> Self {
        RrSet { name, rtype, ttl, rdata: Vec::new() }
    }

    /// The owner name.
    pub fn name(&self) -> &DomainName {
        &self.name
    }

    /// The record type.
    pub fn rtype(&self) -> RecordType {
        self.rtype
    }

    /// The set-wide TTL.
    pub fn ttl(&self) -> Ttl {
        self.ttl
    }

    /// Adds rdata to the set, ignoring exact duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the rdata's type disagrees with the set's type — that is a
    /// programming error, not an input error.
    pub fn push(&mut self, data: RecordData) -> bool {
        assert_eq!(
            data.rtype(),
            self.rtype,
            "rdata type {} pushed into {} RRset",
            data.rtype(),
            self.rtype
        );
        if self.rdata.contains(&data) {
            return false;
        }
        self.rdata.push(data);
        true
    }

    /// Number of records in the set.
    pub fn len(&self) -> usize {
        self.rdata.len()
    }

    /// Whether the set holds no records.
    pub fn is_empty(&self) -> bool {
        self.rdata.is_empty()
    }

    /// Iterates over the rdata.
    pub fn iter(&self) -> std::slice::Iter<'_, RecordData> {
        self.rdata.iter()
    }

    /// Expands the set into full resource records.
    pub fn to_records(&self) -> Vec<ResourceRecord> {
        self.rdata
            .iter()
            .map(|d| ResourceRecord::new(self.name.clone(), self.ttl, d.clone()))
            .collect()
    }

    /// The NS targets, for NS RRsets; empty otherwise.
    pub fn ns_targets(&self) -> Vec<&DomainName> {
        self.rdata.iter().filter_map(RecordData::as_ns).collect()
    }
}

impl fmt::Display for RrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rr) in self.to_records().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{rr}")?;
        }
        Ok(())
    }
}

impl Extend<RecordData> for RrSet {
    fn extend<T: IntoIterator<Item = RecordData>>(&mut self, iter: T) {
        for d in iter {
            self.push(d);
        }
    }
}

impl<'a> IntoIterator for &'a RrSet {
    type Item = &'a RecordData;
    type IntoIter = std::slice::Iter<'a, RecordData>;
    fn into_iter(self) -> Self::IntoIter {
        self.rdata.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns_set() -> RrSet {
        let mut s = RrSet::new("gov.example".parse().unwrap(), RecordType::Ns, 300);
        s.push(RecordData::Ns("ns1.gov.example".parse().unwrap()));
        s.push(RecordData::Ns("ns2.gov.example".parse().unwrap()));
        s
    }

    #[test]
    fn dedupes_rdata() {
        let mut s = ns_set();
        assert!(!s.push(RecordData::Ns("ns1.gov.example".parse().unwrap())));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "rdata type")]
    fn rejects_mismatched_type() {
        let mut s = ns_set();
        s.push(RecordData::Txt("oops".into()));
    }

    #[test]
    fn expands_to_records() {
        let recs = ns_set().to_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.ttl == 300 && r.rtype() == RecordType::Ns));
    }

    #[test]
    fn ns_targets_extracts_names() {
        let s = ns_set();
        let t: Vec<String> = s.ns_targets().iter().map(|n| n.to_string()).collect();
        assert_eq!(t, vec!["ns1.gov.example", "ns2.gov.example"]);
    }
}
