use std::fmt;

/// Errors produced by the DNS data model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A label was empty, e.g. `a..b`.
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The full name exceeded 255 octets.
    NameTooLong(usize),
    /// A label contained a character outside `[A-Za-z0-9_-]`.
    InvalidCharacter(char),
    /// The wire buffer ended before the structure was complete.
    TruncatedWire,
    /// A compression pointer pointed forward or into a loop.
    BadCompressionPointer(u16),
    /// An unknown record type code was encountered on the wire.
    UnknownRecordType(u16),
    /// The rdata length did not match the record type's expectations.
    BadRdataLength {
        /// The record type being decoded.
        rtype: u16,
        /// The length found on the wire.
        len: usize,
    },
    /// An address literal failed to parse.
    BadAddress(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyLabel => write!(f, "empty label in domain name"),
            ModelError::LabelTooLong(l) => write!(f, "label `{l}` exceeds 63 octets"),
            ModelError::NameTooLong(n) => write!(f, "domain name of {n} octets exceeds 255"),
            ModelError::InvalidCharacter(c) => {
                write!(f, "invalid character `{c}` in domain name")
            }
            ModelError::TruncatedWire => write!(f, "wire data ended unexpectedly"),
            ModelError::BadCompressionPointer(p) => {
                write!(f, "invalid compression pointer to offset {p}")
            }
            ModelError::UnknownRecordType(t) => write!(f, "unknown record type code {t}"),
            ModelError::BadRdataLength { rtype, len } => {
                write!(f, "rdata length {len} invalid for record type {rtype}")
            }
            ModelError::BadAddress(a) => write!(f, "invalid address literal `{a}`"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ModelError::EmptyLabel;
        let s = e.to_string();
        assert!(s.chars().next().unwrap().is_lowercase());
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
