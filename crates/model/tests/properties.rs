//! Property-based tests for the DNS data model: name parsing, wire codec
//! round-trips, date arithmetic, and zone lookup invariants.

use proptest::prelude::*;

use govdns_model::{
    wire, DateRange, DomainName, Message, RecordData, RecordType, ResourceRecord, SimDate, Soa,
    Zone, ZoneLookup,
};

fn label_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]|[a-z]".prop_map(|s| s)
}

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(label_strategy(), 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("generated labels are valid"))
}

fn rdata_strategy() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RecordData::Aaaa(o.into())),
        name_strategy().prop_map(RecordData::Ns),
        name_strategy().prop_map(RecordData::Cname),
        name_strategy().prop_map(RecordData::Ptr),
        "[ -~]{0,300}".prop_map(RecordData::Txt),
        (name_strategy(), name_strategy(), any::<u32>())
            .prop_map(|(m, r, serial)| { RecordData::Soa(Soa::new(m, r).with_serial(serial)) }),
    ]
}

fn message_strategy() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        name_strategy(),
        prop::sample::select(RecordType::all().to_vec()),
        prop::collection::vec((name_strategy(), any::<u32>(), rdata_strategy()), 0..6),
        any::<bool>(),
    )
        .prop_map(|(id, qname, qtype, answers, aa)| {
            let q = Message::query(id, qname, qtype);
            let mut r = q.response();
            if aa {
                r = r.authoritative();
            }
            r.answers = answers
                .into_iter()
                .map(|(name, ttl, data)| ResourceRecord::new(name, ttl, data))
                .collect();
            r
        })
}

proptest! {
    #[test]
    fn name_parse_display_roundtrip(name in name_strategy()) {
        let text = name.to_string();
        let back: DomainName = text.parse().unwrap();
        prop_assert_eq!(back, name);
    }

    #[test]
    fn name_parent_reduces_level(name in name_strategy()) {
        let parent = name.parent().unwrap();
        prop_assert_eq!(parent.level() + 1, name.level());
        prop_assert!(name.is_subdomain_of(&parent));
    }

    #[test]
    fn name_suffix_is_always_within(name in name_strategy(), k in 0usize..6) {
        let s = name.suffix(k);
        prop_assert!(name.is_within(&s));
    }

    #[test]
    fn ancestors_are_monotone(name in name_strategy()) {
        let chain: Vec<DomainName> = name.ancestors().collect();
        prop_assert_eq!(chain.len(), name.level() + 1);
        for w in chain.windows(2) {
            prop_assert!(w[0].is_subdomain_of(&w[1]));
        }
        prop_assert!(chain.last().unwrap().is_root());
    }

    #[test]
    fn wire_roundtrip_query(id in any::<u16>(), name in name_strategy()) {
        let q = Message::query(id, name, RecordType::Ns);
        let bytes = wire::encode(&q);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), q);
    }

    #[test]
    fn wire_roundtrip_response(msg in message_strategy()) {
        let bytes = wire::encode(&msg);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = wire::decode(&bytes);
    }

    #[test]
    fn date_ymd_roundtrip(days in -20_000i64..40_000) {
        let d = SimDate::from_days(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(SimDate::from_ymd(y, m, dd), d);
    }

    #[test]
    fn date_ordering_matches_days(a in -20_000i64..40_000, b in -20_000i64..40_000) {
        let (da, db) = (SimDate::from_days(a), SimDate::from_days(b));
        prop_assert_eq!(da < db, a < b);
        prop_assert_eq!(da.days_until(db), b - a);
    }

    #[test]
    fn range_intersection_is_commutative_and_contained(
        s1 in 0i64..1000, l1 in 0i64..400, s2 in 0i64..1000, l2 in 0i64..400,
    ) {
        let r1 = DateRange::new(SimDate::from_days(s1), SimDate::from_days(s1 + l1));
        let r2 = DateRange::new(SimDate::from_days(s2), SimDate::from_days(s2 + l2));
        let i12 = r1.intersect(&r2);
        let i21 = r2.intersect(&r1);
        prop_assert_eq!(i12, i21);
        prop_assert_eq!(i12.is_some(), r1.overlaps(&r2));
        if let Some(i) = i12 {
            prop_assert!(i.len_days() <= r1.len_days());
            prop_assert!(i.len_days() <= r2.len_days());
            prop_assert!(r1.contains(i.start) && r2.contains(i.start));
            prop_assert!(r1.contains(i.end) && r2.contains(i.end));
        }
    }

    #[test]
    fn zone_lookup_total(qname in name_strategy()) {
        // A fixed small zone: lookup must classify every name somewhere
        // and never panic.
        let origin: DomainName = "gov.zz".parse().unwrap();
        let mut z = Zone::new(origin.clone());
        z.add_ns(origin.clone(), "ns1.gov.zz".parse().unwrap());
        z.add_ns("child.gov.zz".parse().unwrap(), "ns1.child.gov.zz".parse().unwrap());
        let r = z.lookup(&qname, RecordType::A);
        if !qname.is_within(&origin) {
            prop_assert_eq!(r, ZoneLookup::OutOfZone);
        } else {
            prop_assert!(!matches!(r, ZoneLookup::OutOfZone));
        }
    }
}

proptest! {
    /// Any zone assembled from generated records serializes to master-file
    /// text that parses back to the identical zone.
    #[test]
    fn zonefile_roundtrip(
        records in prop::collection::vec((label_strategy(), rdata_strategy()), 0..12),
    ) {
        let origin: DomainName = "gov.zz".parse().unwrap();
        let mut zone = govdns_model::Zone::new(origin.clone());
        for (label, data) in records {
            // TXT content is restricted to what master files can carry
            // losslessly in this subset (no quotes/backslashes).
            let data = match data {
                RecordData::Txt(t) => {
                    RecordData::Txt(t.chars().filter(|c| *c != '"' && *c != '\\').collect())
                }
                other => other,
            };
            let owner = origin.prepend(&label).unwrap();
            zone.add(owner, data);
        }
        let text = govdns_model::zonefile::serialize(&zone);
        let back = govdns_model::zonefile::parse(&text).unwrap();
        prop_assert_eq!(back, zone);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn zonefile_parse_never_panics(text in "[ -~\n]{0,400}") {
        let _ = govdns_model::zonefile::parse(&text);
    }
}
