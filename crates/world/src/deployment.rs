use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::ProviderId;

/// How a domain's authoritative service is operated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentStyle {
    /// Nameservers hosted inside the domain's own `d_gov` (the paper's
    /// "private ADNS deployment").
    Private,
    /// All nameservers from one third-party provider (a `d_1P` domain).
    SingleProvider(ProviderId),
    /// Nameservers split across two providers.
    DualProvider(ProviderId, ProviderId),
}

impl DeploymentStyle {
    /// Whether this is a private deployment.
    pub fn is_private(self) -> bool {
        matches!(self, DeploymentStyle::Private)
    }

    /// The providers involved (empty for private deployments).
    pub fn providers(self) -> Vec<ProviderId> {
        match self {
            DeploymentStyle::Private => Vec::new(),
            DeploymentStyle::SingleProvider(p) => vec![p],
            DeploymentStyle::DualProvider(a, b) => vec![a, b],
        }
    }
}

/// Topological placement of a nameserver pair — the knob Table I's
/// diversity columns are calibrated through.
///
/// The policy describes what an outside observer would find when resolving
/// the pair's hostnames: one shared address, distinct addresses in one
/// /24, distinct /24s within one AS, or distinct ASes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiversityPolicy {
    /// Both hostnames resolve to the same IPv4 address (the pattern the
    /// paper traces to one `d_gov` — Thailand's shared pairs).
    SameIp,
    /// Distinct addresses inside one /24.
    SameSlash24,
    /// Distinct /24s inside one autonomous system.
    MultiSlash24,
    /// Distinct autonomous systems.
    MultiAsn,
}

impl DiversityPolicy {
    /// Whether pairs under this policy have more than one address.
    pub fn multi_ip(self) -> bool {
        !matches!(self, DiversityPolicy::SameIp)
    }

    /// Whether pairs under this policy span more than one /24.
    pub fn multi_24(self) -> bool {
        matches!(self, DiversityPolicy::MultiSlash24 | DiversityPolicy::MultiAsn)
    }

    /// Whether pairs under this policy span more than one AS.
    pub fn multi_asn(self) -> bool {
        matches!(self, DiversityPolicy::MultiAsn)
    }
}

/// A provider's pool of nameserver host pairs.
///
/// Real providers hand each customer a pair (or quad) from a finite pool,
/// so distinct domains share nameservers — which is why the paper can
/// check most nameservers more than once. The pool indexes pairs; the
/// generator assigns each pair concrete addresses once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NsPool {
    pairs: Vec<(DomainName, DomainName)>,
}

impl NsPool {
    /// Builds a pool from pre-generated pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn new(pairs: Vec<(DomainName, DomainName)>) -> Self {
        assert!(!pairs.is_empty(), "a nameserver pool needs at least one pair");
        NsPool { pairs }
    }

    /// The pair for customer-slot `idx` (wraps around the pool).
    pub fn pair(&self, idx: usize) -> &(DomainName, DomainName) {
        &self.pairs[idx % self.pairs.len()]
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the pool is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(DomainName, DomainName)> {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_predicates() {
        assert!(DeploymentStyle::Private.is_private());
        assert_eq!(DeploymentStyle::SingleProvider(3).providers(), vec![3]);
        assert_eq!(DeploymentStyle::DualProvider(1, 2).providers(), vec![1, 2]);
    }

    #[test]
    fn diversity_policy_is_monotone() {
        // multi_asn ⇒ multi_24 ⇒ multi_ip.
        for p in [
            DiversityPolicy::SameIp,
            DiversityPolicy::SameSlash24,
            DiversityPolicy::MultiSlash24,
            DiversityPolicy::MultiAsn,
        ] {
            if p.multi_asn() {
                assert!(p.multi_24());
            }
            if p.multi_24() {
                assert!(p.multi_ip());
            }
        }
        assert!(!DiversityPolicy::SameIp.multi_ip());
        assert!(DiversityPolicy::SameSlash24.multi_ip());
        assert!(!DiversityPolicy::SameSlash24.multi_24());
    }

    #[test]
    fn pool_wraps() {
        let pool = NsPool::new(vec![
            ("ns1.p.example".parse().unwrap(), "ns2.p.example".parse().unwrap()),
            ("ns3.p.example".parse().unwrap(), "ns4.p.example".parse().unwrap()),
        ]);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.pair(0), pool.pair(2));
        assert_ne!(pool.pair(0), pool.pair(1));
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn empty_pool_rejected() {
        NsPool::new(Vec::new());
    }
}
