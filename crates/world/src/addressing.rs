use std::net::Ipv4Addr;

use govdns_simnet::{Asn, AsnDb};

use crate::deployment::DiversityPolicy;

/// Handle to an autonomous system allocated by the [`AddressPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsnAlloc(usize);

#[derive(Debug, Clone)]
struct AllocState {
    asn: Asn,
    /// /24 network bases (u32 of `x.y.z.0`) owned by this AS.
    next_24: u32,
    /// Base of the current /16 (u32 of `x.y.0.0`).
    slash16_base: u32,
    /// Host cursor inside the "singles" /24 (index 0 of each /16).
    next_single_host: u32,
}

/// The world's address plan: hands out autonomous systems and addresses,
/// building the [`AsnDb`] (the MaxMind GeoIP2-ASN stand-in) as it goes.
///
/// Each AS starts with one /16; further /16s are appended when exhausted.
/// Within an AS, /24 index 0 serves single-host requests and indexes
/// 1..256 serve nameserver pairs, so pair-placement policies are exact.
#[derive(Debug)]
pub struct AddressPlan {
    db: AsnDb,
    next_asn: Asn,
    next_slash16: u32,
    allocs: Vec<AllocState>,
}

impl AddressPlan {
    /// Creates an empty plan. Address space grows upward from `11.0.0.0`.
    pub fn new() -> Self {
        AddressPlan {
            db: AsnDb::new(),
            next_asn: 64_512,
            // /16 index: 11.0.0.0 is block 11 * 256.
            next_slash16: 11 * 256,
            allocs: Vec::new(),
        }
    }

    /// Allocates a fresh autonomous system with one /16.
    pub fn allocate_asn(&mut self) -> AsnAlloc {
        let asn = self.next_asn;
        self.next_asn += 1;
        let base = self.take_slash16(asn);
        self.allocs.push(AllocState {
            asn,
            next_24: 1, // /24 #0 is the singles pool
            slash16_base: base,
            next_single_host: 1,
        });
        AsnAlloc(self.allocs.len() - 1)
    }

    fn take_slash16(&mut self, asn: Asn) -> u32 {
        let base = self.next_slash16 << 16;
        self.next_slash16 += 1;
        assert!(self.next_slash16 < 223 * 256, "address plan exhausted unicast space");
        self.db.allocate(Ipv4Addr::from(base), Ipv4Addr::from(base | 0xFFFF), asn);
        base
    }

    /// The AS number behind a handle.
    pub fn asn_of(&self, a: AsnAlloc) -> Asn {
        self.allocs[a.0].asn
    }

    /// A fresh single-host address in the AS (web servers, parent-zone
    /// nameservers, parking hosts).
    pub fn fresh_host(&mut self, a: AsnAlloc) -> Ipv4Addr {
        let needs_new_16 = {
            let st = &self.allocs[a.0];
            st.next_single_host > 254
        };
        if needs_new_16 {
            let asn = self.allocs[a.0].asn;
            let base = self.take_slash16(asn);
            let st = &mut self.allocs[a.0];
            st.slash16_base = base;
            st.next_24 = 1;
            st.next_single_host = 1;
        }
        let st = &mut self.allocs[a.0];
        let ip = st.slash16_base | st.next_single_host;
        st.next_single_host += 1;
        Ipv4Addr::from(ip)
    }

    /// A fresh /24 network base in the AS.
    fn fresh_24(&mut self, a: AsnAlloc) -> u32 {
        let needs_new_16 = {
            let st = &self.allocs[a.0];
            st.next_24 > 255
        };
        if needs_new_16 {
            let asn = self.allocs[a.0].asn;
            let base = self.take_slash16(asn);
            let st = &mut self.allocs[a.0];
            st.slash16_base = base;
            st.next_24 = 1;
            st.next_single_host = 1;
        }
        let st = &mut self.allocs[a.0];
        let net = st.slash16_base | (st.next_24 << 8);
        st.next_24 += 1;
        net
    }

    /// Addresses for one nameserver pair under `policy`. For
    /// [`DiversityPolicy::MultiAsn`] the second address comes from `b`;
    /// other policies draw from `a` only.
    pub fn pair_ips(
        &mut self,
        a: AsnAlloc,
        b: AsnAlloc,
        policy: DiversityPolicy,
    ) -> (Ipv4Addr, Ipv4Addr) {
        match policy {
            DiversityPolicy::SameIp => {
                let net = self.fresh_24(a);
                let ip = Ipv4Addr::from(net | 1);
                (ip, ip)
            }
            DiversityPolicy::SameSlash24 => {
                let net = self.fresh_24(a);
                (Ipv4Addr::from(net | 1), Ipv4Addr::from(net | 2))
            }
            DiversityPolicy::MultiSlash24 => {
                let n1 = self.fresh_24(a);
                let n2 = self.fresh_24(a);
                (Ipv4Addr::from(n1 | 1), Ipv4Addr::from(n2 | 1))
            }
            DiversityPolicy::MultiAsn => {
                let n1 = self.fresh_24(a);
                let n2 = self.fresh_24(b);
                (Ipv4Addr::from(n1 | 1), Ipv4Addr::from(n2 | 1))
            }
        }
    }

    /// A read view of the ASN database built so far.
    pub fn asn_db(&self) -> &AsnDb {
        &self.db
    }

    /// Finishes the plan, yielding the ASN database.
    pub fn into_asn_db(self) -> AsnDb {
        self.db
    }
}

impl Default for AddressPlan {
    fn default() -> Self {
        AddressPlan::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_simnet::prefix24;

    #[test]
    fn asns_are_distinct_and_registered() {
        let mut plan = AddressPlan::new();
        let a = plan.allocate_asn();
        let b = plan.allocate_asn();
        assert_ne!(plan.asn_of(a), plan.asn_of(b));
        let ip = plan.fresh_host(a);
        assert_eq!(plan.asn_db().lookup(ip), Some(plan.asn_of(a)));
    }

    #[test]
    fn policies_place_pairs_correctly() {
        let mut plan = AddressPlan::new();
        let a = plan.allocate_asn();
        let b = plan.allocate_asn();
        let db = |plan: &AddressPlan, ip| plan.asn_db().lookup(ip).unwrap();

        let (x, y) = plan.pair_ips(a, b, DiversityPolicy::SameIp);
        assert_eq!(x, y);

        let (x, y) = plan.pair_ips(a, b, DiversityPolicy::SameSlash24);
        assert_ne!(x, y);
        assert_eq!(prefix24(x), prefix24(y));

        let (x, y) = plan.pair_ips(a, b, DiversityPolicy::MultiSlash24);
        assert_ne!(prefix24(x), prefix24(y));
        assert_eq!(db(&plan, x), db(&plan, y));

        let (x, y) = plan.pair_ips(a, b, DiversityPolicy::MultiAsn);
        assert_ne!(prefix24(x), prefix24(y));
        assert_ne!(db(&plan, x), db(&plan, y));
    }

    #[test]
    fn exhausting_a_slash16_grows_the_as() {
        let mut plan = AddressPlan::new();
        let a = plan.allocate_asn();
        let b = plan.allocate_asn();
        let asn = plan.asn_of(a);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            // 300 multi-24 pairs need 600 /24s: more than one /16.
            let (x, y) = plan.pair_ips(a, b, DiversityPolicy::MultiSlash24);
            assert!(seen.insert(x) && seen.insert(y), "addresses must be unique");
            assert_eq!(plan.asn_db().lookup(x), Some(asn));
            assert_eq!(plan.asn_db().lookup(y), Some(asn));
        }
    }

    #[test]
    fn single_hosts_are_unique() {
        let mut plan = AddressPlan::new();
        let a = plan.allocate_asn();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            assert!(seen.insert(plan.fresh_host(a)));
        }
    }
}
