use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::country::CountryCode;

/// One country's entry in the UN E-Government Knowledge Base: the link to
/// its national portal, plus (when filed) the domain reported in the
/// member-states questionnaire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortalEntry {
    /// The country.
    pub country: CountryCode,
    /// FQDN in the national-portal link on the Knowledge Base website.
    pub portal_fqdn: DomainName,
    /// Domain reported in the member-states questionnaire, if any.
    pub msq_fqdn: Option<DomainName>,
}

/// The UN E-Government Knowledge Base stand-in: per-country portal links
/// with the paper's documented quirks (unresolvable links, MSQ
/// mismatches, one squatted portal).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnKnowledgeBase {
    entries: BTreeMap<CountryCode, PortalEntry>,
}

impl UnKnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        UnKnowledgeBase::default()
    }

    /// Adds (or replaces) a country's entry.
    pub fn insert(&mut self, entry: PortalEntry) {
        self.entries.insert(entry.country, entry);
    }

    /// The entry for `country`, if present.
    pub fn entry(&self, country: CountryCode) -> Option<&PortalEntry> {
        self.entries.get(&country)
    }

    /// All entries, in country order.
    pub fn iter(&self) -> impl Iterator<Item = &PortalEntry> {
        self.entries.values()
    }

    /// Number of member states listed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the knowledge base is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// ccTLD registry documentation — the stand-in for the manual search of
/// IANA's root database and each registry's policy pages that the paper
/// performs to verify a suffix is reserved for government use.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryDocs {
    reserved: BTreeMap<DomainName, bool>,
}

impl RegistryDocs {
    /// Creates empty documentation.
    pub fn new() -> Self {
        RegistryDocs::default()
    }

    /// Records that `suffix` is documented as reserved (or explicitly not
    /// reserved) for government use.
    pub fn document(&mut self, suffix: DomainName, reserved_for_government: bool) {
        self.reserved.insert(suffix, reserved_for_government);
    }

    /// Whether documentation confirms `suffix` is government-reserved.
    /// `None` means no documentation could be found — the paper's
    /// laogov/timor-leste/jis cases, which fall back to the registered
    /// domain.
    pub fn suffix_reserved_for_government(&self, suffix: &DomainName) -> Option<bool> {
        self.reserved.get(suffix).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_roundtrip() {
        let mut kb = UnKnowledgeBase::new();
        kb.insert(PortalEntry {
            country: CountryCode::new("au"),
            portal_fqdn: "www.australia.gov.au".parse().unwrap(),
            msq_fqdn: None,
        });
        kb.insert(PortalEntry {
            country: CountryCode::new("no"),
            portal_fqdn: "www.regjeringen.no".parse().unwrap(),
            msq_fqdn: Some("www.regjeringen.no".parse().unwrap()),
        });
        assert_eq!(kb.len(), 2);
        assert_eq!(
            kb.entry(CountryCode::new("au")).unwrap().portal_fqdn.to_string(),
            "www.australia.gov.au"
        );
        assert!(kb.entry(CountryCode::new("br")).is_none());
        assert_eq!(kb.iter().count(), 2);
    }

    #[test]
    fn registry_docs_three_states() {
        let mut docs = RegistryDocs::new();
        docs.document("gov.au".parse().unwrap(), true);
        docs.document("com.au".parse().unwrap(), false);
        assert_eq!(docs.suffix_reserved_for_government(&"gov.au".parse().unwrap()), Some(true));
        assert_eq!(docs.suffix_reserved_for_government(&"com.au".parse().unwrap()), Some(false));
        assert_eq!(docs.suffix_reserved_for_government(&"gov.la".parse().unwrap()), None);
    }
}
