use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use govdns_model::{DomainName, SimDate};
use govdns_pdns::PdnsDb;
use govdns_simnet::{AsnDb, SimNetwork};

use crate::country::{Country, CountryCode};
use crate::faults::FaultPlan;
use crate::provider::ProviderCatalog;
use crate::registrar::Registrar;
use crate::timeline::DomainTimeline;
use crate::unkb::{RegistryDocs, UnKnowledgeBase};
use crate::webarchive::WebArchive;

/// Ground truth for one generated domain — what the generator configured,
/// against which validation tests compare what the pipeline measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainTruth {
    /// The domain's 2011–2021 deployment history.
    pub timeline: DomainTimeline,
    /// Misconfigurations injected into the April-2021 snapshot.
    pub faults: FaultPlan,
    /// NS targets as configured in the parent zone (April 2021); empty if
    /// the delegation was removed.
    pub parent_ns: Vec<DomainName>,
    /// NS targets as configured in the child zone (April 2021); empty if
    /// the zone is gone.
    pub child_ns: Vec<DomainName>,
    /// Whether the domain still exists in April 2021.
    pub alive_2021: bool,
}

/// Everything the generator decided, keyed for validation.
#[derive(Debug, Clone, Default)]
pub struct WorldTruth {
    /// Seed government domain per country.
    pub d_gov: BTreeMap<CountryCode, DomainName>,
    /// Per-domain ground truth.
    pub domains: Vec<DomainTruth>,
}

impl WorldTruth {
    /// Ground truth for one domain, if it exists.
    pub fn domain(&self, name: &DomainName) -> Option<&DomainTruth> {
        self.domains.iter().find(|d| d.timeline.name == *name)
    }
}

/// The generated world: every substrate the measurement pipeline needs,
/// plus ground truth for validation.
#[derive(Debug)]
pub struct World {
    /// The 193 UN member countries.
    pub countries: Vec<Country>,
    /// The provider market.
    pub catalog: ProviderCatalog,
    /// The simulated internet (April-2021 snapshot).
    pub network: SimNetwork,
    /// Root-server hints for resolvers.
    pub roots: Vec<Ipv4Addr>,
    /// The passive-DNS database accumulated over 2010–2021.
    pub pdns: PdnsDb,
    /// The prefix→ASN database (GeoIP2-ASN stand-in).
    pub asn_db: AsnDb,
    /// The registrar storefront (GoDaddy stand-in).
    pub registrar: Registrar,
    /// Earliest government snapshots (Web Archive stand-in).
    pub webarchive: WebArchive,
    /// The UN E-Government Knowledge Base stand-in.
    pub unkb: UnKnowledgeBase,
    /// ccTLD registry documentation stand-in.
    pub registry_docs: RegistryDocs,
    /// The date of the active measurement campaign.
    pub collection_date: SimDate,
    pub(crate) truth: WorldTruth,
}

impl World {
    /// Generation ground truth — for validation, not for the pipeline.
    pub fn truth(&self) -> &WorldTruth {
        &self.truth
    }

    /// The country with the given code.
    pub fn country(&self, code: CountryCode) -> Option<&Country> {
        self.countries.iter().find(|c| c.code == code)
    }

    /// The seed government domain of a country.
    pub fn d_gov(&self, code: CountryCode) -> Option<&DomainName> {
        self.truth.d_gov.get(&code)
    }
}
