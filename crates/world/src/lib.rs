//! # govdns-world
//!
//! A synthetic e-government world, calibrated to the aggregates published
//! in the DSN 2022 study — the stand-in for the live Internet, Farsight's
//! DNSDB feed, the UN E-Government Knowledge Base, MaxMind's ASN database,
//! GoDaddy's storefront, and the Web Archive.
//!
//! [`WorldGenerator`] builds a [`World`] from a seed and a scale factor:
//!
//! * 193 UN member countries ([`countries`]) with their UN sub-regions,
//! * a third-party DNS provider market ([`ProviderCatalog`]) whose shares
//!   evolve 2011→2020 the way Tables II–III report (Amazon and Cloudflare
//!   growing from nothing, EveryDNS dying, DNSPod staying Chinese, ...),
//! * per-domain deployment timelines (creation, churn, provider
//!   migrations, single-NS cohorts with the observed ~20%/year turnover),
//! * a sensor-fed passive-DNS database covering the decade,
//! * an April-2021 DNS snapshot as simulated zones and servers, with every
//!   misconfiguration class the paper measures injected at calibrated
//!   rates ([`FaultClass`]): partial/fully defective delegations, stale
//!   records, typo'd nameserver names, relative-label truncation,
//!   parent/child inconsistencies of each Sommese category, and dangling
//!   NS targets whose registered domains are registrable,
//! * a [`Registrar`] with heavy-tailed pricing and a [`WebArchive`] of
//!   earliest government snapshots,
//! * the [`UnKnowledgeBase`] with the paper's documented seed-selection
//!   quirks (unresolvable links, MSQ mismatches, one squatted portal).
//!
//! The measurement pipeline (`govdns-core`) consumes only the interfaces a
//! real campaign would have: the knowledge base, the PDNS query API, the
//! network, the ASN database, and the registrar. Generation ground truth
//! stays available for validation tests via [`World::truth`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addressing;
pub mod calibration;
mod countries_data;
mod country;
mod deployment;
mod faults;
mod generator;
mod provider;
mod registrar;
mod timeline;
mod unkb;
mod webarchive;
mod world;

pub use addressing::AddressPlan;
pub use countries_data::countries;
pub use country::{Country, CountryCode, SubRegion};
pub use deployment::{DeploymentStyle, DiversityPolicy, NsPool};
pub use faults::{FaultClass, FaultPlan, InconsistencyKind};
pub use generator::{WorldConfig, WorldGenerator};
pub use govdns_pdns::SensorConfig;
pub use provider::{
    MatchRule, MatchTarget, NamingStyle, Provider, ProviderCatalog, ProviderId, ProviderMatcher,
};
pub use registrar::{PriceUsd, Registrar};
pub use timeline::{DomainTimeline, Epoch};
pub use unkb::{PortalEntry, RegistryDocs, UnKnowledgeBase};
pub use webarchive::WebArchive;
pub use world::{DomainTruth, World, WorldTruth};
