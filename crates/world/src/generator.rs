use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use govdns_model::{DateRange, DomainName, RecordData, SimDate};
use govdns_pdns::{SensorConfig, SensorNetwork};

use crate::addressing::{AddressPlan, AsnAlloc};
use crate::calibration::{self, DiversityTarget};
use crate::country::{Country, CountryCode, EgovTier};
use crate::deployment::{DeploymentStyle, DiversityPolicy};
use crate::provider::{ProviderCatalog, ProviderId};
use crate::timeline::{DomainTimeline, Epoch};
use crate::unkb::{PortalEntry, RegistryDocs, UnKnowledgeBase};
use crate::webarchive::WebArchive;
use crate::world::World;

mod snapshot;

/// Configuration of a generated world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldConfig {
    /// Seed for all generation randomness; equal seeds and configs yield
    /// identical worlds.
    pub seed: u64,
    /// Fraction of paper scale (1.0 ≈ 192.6k PDNS domains in 2020).
    pub scale: f64,
    /// Packet-loss probability on the simulated network.
    pub loss_rate: f64,
    /// Sensor-coverage model for the passive-DNS feed.
    pub sensor: SensorConfig,
}

impl WorldConfig {
    /// A small world for tests and examples: 5% of paper scale, perfect
    /// sensors, lossless network.
    pub fn small(seed: u64) -> Self {
        WorldConfig { seed, scale: 0.05, loss_rate: 0.0, sensor: SensorConfig::perfect() }
    }

    /// The paper-scale world: ~192.6k PDNS domains in 2020 and ~147k
    /// probed domains. Generation takes minutes and several GiB of
    /// memory; EXPERIMENTS.md uses 10% scale, whose rates are identical.
    pub fn paper(seed: u64) -> Self {
        WorldConfig { seed, scale: 1.0, loss_rate: 0.0, sensor: SensorConfig::realistic() }
    }

    /// Sets the scale (builder style).
    ///
    /// # Panics
    ///
    /// Panics on non-positive or absurd (> 2.0) scales.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 2.0, "scale {scale} outside (0, 2]");
        self.scale = scale;
        self
    }

    /// Sets the network loss rate (builder style).
    #[must_use]
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        self.loss_rate = rate;
        self
    }

    /// Sets the sensor model (builder style).
    #[must_use]
    pub fn with_sensor(mut self, sensor: SensorConfig) -> Self {
        self.sensor = sensor;
        self
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig::small(0x60_7D_85)
    }
}

/// Builds [`World`]s from a [`WorldConfig`].
#[derive(Debug, Clone)]
pub struct WorldGenerator {
    cfg: WorldConfig,
}

impl WorldGenerator {
    /// Creates a generator.
    pub fn new(cfg: WorldConfig) -> Self {
        WorldGenerator { cfg }
    }

    /// Generates the world. Deterministic in the config.
    pub fn generate(&self) -> World {
        Build::run(self.cfg)
    }
}

/// The date of the active measurement campaign (April 2021, as in §III-B).
pub(crate) const COLLECTION_DATE: (i32, u32, u32) = (2021, 4, 15);

/// Words agencies are named after.
const AGENCY_WORDS: [&str; 40] = [
    "health",
    "edu",
    "tax",
    "customs",
    "justice",
    "police",
    "treasury",
    "senate",
    "court",
    "labor",
    "agri",
    "mines",
    "energy",
    "water",
    "roads",
    "rail",
    "ports",
    "stats",
    "census",
    "meteo",
    "parks",
    "culture",
    "sport",
    "tourism",
    "trade",
    "digital",
    "archives",
    "library",
    "pension",
    "social",
    "housing",
    "land",
    "forest",
    "fish",
    "post",
    "elections",
    "budget",
    "audit",
    "defense",
    "foreign",
];

const REGION_WORDS: [&str; 8] =
    ["north", "south", "east", "west", "central", "coast", "highland", "valley"];

/// What role a generated domain plays in the April-2021 snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Category {
    /// The seed `d_gov` zone itself.
    DGov,
    /// A living intermediate zone with delegations of its own.
    Intermediate,
    /// A responsive leaf domain.
    Responsive,
    /// Delegation removed from the parent (parent answers NXDOMAIN).
    Removed,
    /// An intermediate whose zone died: still delegated, all NS dead.
    DeadIntermediate,
    /// A child of a dead intermediate (probe gets no parent response).
    DeadChild,
    /// Died before the discovery window or lived only days (filtered out
    /// before querying).
    Historical,
}

/// One deployment change point.
#[derive(Debug, Clone)]
pub(crate) struct EpochSpec {
    pub start: SimDate,
    pub style: DeploymentStyle,
    pub hosts: Vec<DomainName>,
}

/// A generated domain, before snapshot materialization.
#[derive(Debug, Clone)]
pub(crate) struct DomainRec {
    pub name: DomainName,
    pub country_idx: usize,
    pub created: SimDate,
    /// Set when the zone stops existing (removed / historical).
    pub died: Option<SimDate>,
    /// Sensors stop seeing records at this date even if the zone formally
    /// exists (dead-subtree children).
    pub pdns_end_cap: Option<SimDate>,
    pub single: bool,
    pub category: Category,
    /// Origin of the zone holding this domain's delegation.
    pub parent_zone: DomainName,
    pub epochs: Vec<EpochSpec>,
}

impl DomainRec {
    /// The NS hosts configured at the end of the domain's life.
    pub fn final_hosts(&self) -> &[DomainName] {
        self.epochs.last().map(|e| e.hosts.as_slice()).unwrap_or(&[])
    }

    pub fn final_style(&self) -> DeploymentStyle {
        self.epochs.last().map(|e| e.style).unwrap_or(DeploymentStyle::Private)
    }
}

pub(crate) struct Build {
    pub cfg: WorldConfig,
    pub rng: SmallRng,
    pub countries: Vec<Country>,
    pub catalog: ProviderCatalog,
    pub plan: AddressPlan,
    /// Two AS handles per country (gov infra, local ISP).
    pub country_asns: Vec<(AsnAlloc, AsnAlloc)>,
    /// Concrete addresses for each provider pool pair.
    pub provider_pair_ips: Vec<Vec<(Ipv4Addr, Ipv4Addr)>>,
    pub d_gov: BTreeMap<CountryCode, DomainName>,
    pub unkb: UnKnowledgeBase,
    pub registry_docs: RegistryDocs,
    pub webarchive: WebArchive,
    /// The squatted portal FQDN (hosted on a parking service).
    pub squatted_portal: Option<DomainName>,
    pub domains: Vec<DomainRec>,
    pub collection: SimDate,
}

impl Build {
    pub fn run(cfg: WorldConfig) -> World {
        let countries = crate::countries_data::countries();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Per-country diversity profiles (Table I calibration), sharpened
        // into sampling space.
        let profiles: Vec<DiversityTarget> = countries
            .iter()
            .map(|c| {
                sharpen(
                    calibration::DIVERSITY_TARGETS
                        .iter()
                        .find(|t| t.country.eq_ignore_ascii_case(c.code.as_str()))
                        .copied()
                        .unwrap_or(calibration::DEFAULT_DIVERSITY),
                )
            })
            .collect();

        let mut policy_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x11);
        let catalog = ProviderCatalog::build(&countries, |country, _| {
            let profile = countries
                .iter()
                .position(|c| c.code == country.code)
                .map(|i| profiles[i])
                .unwrap_or(calibration::DEFAULT_DIVERSITY);
            sample_policy(&mut policy_rng, profile)
        });

        let mut plan = AddressPlan::new();
        let provider_asns: Vec<(AsnAlloc, AsnAlloc)> =
            catalog.iter().map(|_| (plan.allocate_asn(), plan.allocate_asn())).collect();
        let country_asns: Vec<(AsnAlloc, AsnAlloc)> =
            countries.iter().map(|_| (plan.allocate_asn(), plan.allocate_asn())).collect();
        let provider_pair_ips: Vec<Vec<(Ipv4Addr, Ipv4Addr)>> = catalog
            .iter()
            .map(|p| {
                let (a, b) = provider_asns[p.id];
                (0..p.pool.len()).map(|_| plan.pair_ips(a, b, p.diversity)).collect()
            })
            .collect();

        let collection = SimDate::from_ymd(COLLECTION_DATE.0, COLLECTION_DATE.1, COLLECTION_DATE.2);

        let mut build = Build {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0x22),
            countries,
            catalog,
            plan,
            country_asns,
            provider_pair_ips,
            d_gov: BTreeMap::new(),
            unkb: UnKnowledgeBase::new(),
            registry_docs: RegistryDocs::new(),
            webarchive: WebArchive::new(),
            squatted_portal: None,
            domains: Vec::new(),
            collection,
        };
        let _ = rng.gen::<u64>();

        build.seeds_and_knowledge_base();
        build.populate();
        build.assign_market(&profiles);
        let pdns = build.feed_pdns();
        snapshot::materialize(build, pdns, &profiles)
    }

    /// Phase B: `d_gov` per country, UN Knowledge Base with its quirks,
    /// registry documentation, Web Archive entries.
    fn seeds_and_knowledge_base(&mut self) {
        use calibration::seeds;

        // Countries with special seed handling.
        let special: BTreeMap<&str, &str> = [
            ("la", "laogov.gov.la"),
            ("tl", "timor-leste.gov.tl"),
            ("jm", "jis.gov.jm"),
            ("no", "regjeringen.no"),
        ]
        .into_iter()
        .collect();

        // Deterministically choose the quirky countries among Minimal-tier
        // members that are not already special.
        let mut minimal: Vec<usize> = self
            .countries
            .iter()
            .enumerate()
            .filter(|(_, c)| c.tier == EgovTier::Minimal && !special.contains_key(c.code.as_str()))
            .map(|(i, _)| i)
            .collect();
        let mut quirk_rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0x33);
        minimal.shuffle(&mut quirk_rng);
        let unresolvable: Vec<usize> =
            minimal.iter().copied().take(seeds::UNRESOLVABLE_LINKS as usize).collect();
        let msq_fix: Vec<usize> =
            unresolvable.iter().copied().take(seeds::MSQ_MISMATCHES as usize).collect();
        let squatted_idx = minimal[seeds::UNRESOLVABLE_LINKS as usize];

        for (i, country) in self.countries.iter().enumerate() {
            let cc = country.code.as_str();
            let d_gov: DomainName = special
                .get(cc)
                .map(|d| d.parse().expect("static special domains parse"))
                .unwrap_or_else(|| format!("gov.{cc}").parse().expect("gov.cc parses"));
            self.d_gov.insert(country.code, d_gov.clone());

            // Registry documentation: gov suffixes are documented as
            // reserved, except the three unverifiable special cases.
            if !special.contains_key(cc) {
                self.registry_docs.document(d_gov.clone(), true);
            } else if cc != "no" {
                // laogov/timor-leste/jis: the enclosing gov.cc suffix has
                // no documentation at all (None), which is what forces the
                // registered-domain fallback.
            }
            // Web Archive history for registered-domain seeds.
            if special.contains_key(cc) {
                let year = 2003 + (i as i32 % 6);
                self.webarchive.record(d_gov.clone(), SimDate::from_ymd(year, 6, 1));
            }

            // The portal FQDN.
            let portal: DomainName = if unresolvable.contains(&i) {
                // A link that does not resolve (stale/typo'd FQDN).
                format!("old-portal.{d_gov}").parse().expect("portal name parses")
            } else if i == squatted_idx {
                let squatted: DomainName =
                    format!("{cc}-gov.com").parse().expect("squatted name parses");
                self.squatted_portal = Some(squatted.clone());
                squatted
            } else if !special.contains_key(cc) && quirk_rng.gen_bool(0.4) {
                format!("www.portal.{d_gov}").parse().expect("portal name parses")
            } else {
                format!("www.{d_gov}").parse().expect("portal name parses")
            };

            // MSQ data: present for ~70% of countries, and always (and
            // correct) for the two MSQ-mismatch cases, the squatted case,
            // and the Norway-style case. The other nine unresolvable-link
            // countries filed no questionnaire domain — that is what
            // leaves the paper stuck with the broken links.
            let needs_msq = msq_fix.contains(&i)
                || i == squatted_idx
                || cc == "no"
                || (!unresolvable.contains(&i) && quirk_rng.gen_bool(0.7));
            let msq_fqdn =
                needs_msq.then(|| format!("www.{d_gov}").parse().expect("msq name parses"));

            self.unkb.insert(PortalEntry { country: country.code, portal_fqdn: portal, msq_fqdn });
        }
        assert_eq!(self.unkb.len(), seeds::COUNTRIES as usize);
    }

    /// Target responsive-domain count for a country (paper scale before
    /// the scale factor).
    fn responsive_target(&mut self, tier: EgovTier) -> f64 {
        match tier {
            EgovTier::Top10(n) => f64::from(n) / calibration::MULTI_NS_SHARE_ACTIVE,
            EgovTier::High => self.rng.gen_range(400.0..1000.0),
            EgovTier::Medium => self.rng.gen_range(80.0..300.0),
            EgovTier::Low => self.rng.gen_range(15.0..80.0),
            EgovTier::Minimal => self.rng.gen_range(2.0..10.0),
        }
    }

    /// Per-country single-NS propensity. 92+ countries get zero; a dozen
    /// get the ≥10% rates the paper names (Indonesia, Kyrgyzstan, Mexico
    /// among them); the rest sit at a few percent.
    fn d1ns_rate(&mut self, country: &Country) -> f64 {
        match country.code.as_str() {
            "mx" => 0.10,
            "id" => 0.12,
            "kg" => 0.16,
            "bo" | "bg" | "bf" | "ae" => 0.25, // tiny denominators, a few d1NS each
            _ => match country.tier {
                EgovTier::Top10(_) => self.rng.gen_range(0.01..0.03),
                EgovTier::High => {
                    if self.rng.gen_bool(0.25) {
                        0.0
                    } else {
                        self.rng.gen_range(0.02..0.06)
                    }
                }
                EgovTier::Medium => {
                    if self.rng.gen_bool(0.4) {
                        0.0
                    } else if self.rng.gen_bool(0.12) {
                        self.rng.gen_range(0.10..0.16)
                    } else {
                        self.rng.gen_range(0.02..0.07)
                    }
                }
                // Low/Minimal e-governments mostly predate the single-NS
                // pattern entirely (the paper's 92 no-d1NS countries).
                EgovTier::Low => {
                    if self.rng.gen_bool(0.7) {
                        0.0
                    } else if self.rng.gen_bool(0.15) {
                        self.rng.gen_range(0.10..0.15)
                    } else {
                        self.rng.gen_range(0.03..0.08)
                    }
                }
                EgovTier::Minimal => 0.0,
            },
        }
    }

    /// Phase C: the 2011→2021 population simulation per country.
    fn populate(&mut self) {
        let shape = yearly_shape();
        let countries = self.countries.clone();
        for (ci, country) in countries.iter().enumerate() {
            let responsive = self.responsive_target(country.tier);
            let a_c = (responsive * self.cfg.scale).max(1.0);
            let d1ns_rate = self.d1ns_rate(country);
            self.populate_country(ci, country, a_c, d1ns_rate, &shape);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn populate_country(
        &mut self,
        ci: usize,
        country: &Country,
        a_c: f64,
        d1ns_rate: f64,
        shape: &[f64; 10],
    ) {
        let d_gov = self.d_gov[&country.code].clone();
        let cc = country.code.as_str().to_owned();
        let mut counter: u64 = 0;
        let mut next_label = |rng: &mut SmallRng, words: &[&str]| {
            counter += 1;
            format!("{}{}", words[rng.gen_range(0..words.len())], counter)
        };

        // The d_gov apex is itself a studied (second-level-ish) domain.
        let dgov_rec = DomainRec {
            name: d_gov.clone(),
            country_idx: ci,
            created: SimDate::from_ymd(2009, 1, 1) + self.rng.gen_range(0..400),
            died: None,
            pdns_end_cap: None,
            single: false,
            category: Category::DGov,
            parent_zone: d_gov.parent().expect("d_gov is never the root"),
            epochs: Vec::new(),
        };
        self.domains.push(dgov_rec);

        // Living intermediates (4th-level parents). Brazil's state zones
        // dominate the 4th level.
        let inter_frac = match cc.as_str() {
            "br" => 0.06,
            _ => 0.02,
        };
        let n_inter = ((a_c * inter_frac).round() as usize).max(if cc == "br" { 3 } else { 1 });
        let mut intermediates = Vec::new();
        for _ in 0..n_inter {
            let label = next_label(&mut self.rng, &REGION_WORDS);
            let name: DomainName =
                format!("{label}.{d_gov}").parse().expect("generated names parse");
            intermediates.push(name.clone());
            self.domains.push(DomainRec {
                name,
                country_idx: ci,
                created: SimDate::from_ymd(2010, 1, 1) + self.rng.gen_range(0..700),
                died: None,
                pdns_end_cap: None,
                single: false,
                category: Category::Intermediate,
                parent_zone: d_gov.clone(),
                epochs: Vec::new(),
            });
        }

        // Doomed intermediates: delegated but dead by collection time;
        // their children are the "no parent response" population.
        let n_doomed = ((a_c * 0.015).round() as usize).max(1);
        let mut doomed = Vec::new();
        for _ in 0..n_doomed {
            let label = next_label(&mut self.rng, &REGION_WORDS);
            let name: DomainName =
                format!("{label}.{d_gov}").parse().expect("generated names parse");
            let death = SimDate::from_ymd(2020, 3, 1) + self.rng.gen_range(0..300);
            doomed.push((name.clone(), death));
            self.domains.push(DomainRec {
                name,
                country_idx: ci,
                created: SimDate::from_ymd(2013, 1, 1) + self.rng.gen_range(0..1100),
                died: None, // still delegated: the records are stale, not gone
                pdns_end_cap: Some(death),
                single: false,
                category: Category::DeadIntermediate,
                parent_zone: d_gov.clone(),
                epochs: Vec::new(),
            });
        }

        // Forward simulation of the persistent leaf population.
        // Persistent pool target ≈ 1.33 × responsive (see DESIGN.md):
        // responsive + removed (~0.18) + dead-subtree children (~0.15).
        let persistent_2020 = a_c * 1.33;
        let fourth_frac: f64 = match cc.as_str() {
            "br" => 0.52,
            "cn" => 0.02,
            _ => 0.03,
        };
        let mut alive: Vec<usize> = Vec::new(); // indexes into self.domains
        for (yi, year) in (calibration::FIRST_YEAR..=calibration::LAST_YEAR).enumerate() {
            // China's 2019 bump + 2020 consolidation dip.
            let mut sh = shape[yi];
            if cc == "cn" {
                if year == 2019 {
                    sh = 1.16;
                } else if year == 2020 {
                    sh = 1.0;
                }
            }
            let target = (persistent_2020 * sh).round() as usize;
            // Deaths at the start of the year.
            let mut survivors = Vec::with_capacity(alive.len());
            for &di in &alive {
                let single = self.domains[di].single;
                let death_p = if single {
                    1.0 - calibration::D1NS_SURVIVAL_RATE
                } else {
                    1.0 - calibration::MULTI_NS_SURVIVAL_RATE
                };
                if self.rng.gen_bool(death_p) {
                    let day = SimDate::from_ymd(year, 1, 1) + self.rng.gen_range(0..360);
                    self.domains[di].died = Some(day);
                    self.domains[di].category = Category::Historical;
                } else {
                    survivors.push(di);
                }
            }
            alive = survivors;
            // Births to reach the year's target.
            let births = target.saturating_sub(alive.len());
            // The factor maps the per-country rate onto the PDNS share
            // trajectory the paper reports: ~4.2% of domains in 2011
            // easing to ~3.1% by 2020 (the cohort grows slower than the
            // population).
            let year_single_adjust = 0.80 - 0.012 * f64::from(year - calibration::FIRST_YEAR);
            let p_single = (d1ns_rate * 2.2 * year_single_adjust).clamp(0.0, 0.9);
            for _ in 0..births {
                let single = self.rng.gen_bool(p_single);
                let is_dead_child = !doomed.is_empty() && self.rng.gen_bool(0.113);
                let is_fourth =
                    !is_dead_child && !intermediates.is_empty() && self.rng.gen_bool(fourth_frac);
                let (parent_zone, pdns_end_cap) = if is_dead_child {
                    let (name, death) = doomed[self.rng.gen_range(0..doomed.len())].clone();
                    (name, Some(death))
                } else if is_fourth {
                    (intermediates[self.rng.gen_range(0..intermediates.len())].clone(), None)
                } else {
                    (d_gov.clone(), None)
                };
                let label = next_label(&mut self.rng, &AGENCY_WORDS);
                let name: DomainName =
                    format!("{label}.{parent_zone}").parse().expect("generated names parse");
                let created = SimDate::from_ymd(year, 1, 1) + self.rng.gen_range(0..360);
                self.domains.push(DomainRec {
                    name,
                    country_idx: ci,
                    created,
                    died: None,
                    pdns_end_cap,
                    single,
                    category: if is_dead_child {
                        Category::DeadChild
                    } else {
                        Category::Responsive
                    },
                    parent_zone,
                    epochs: Vec::new(),
                });
                alive.push(self.domains.len() - 1);
            }
        }

        // Of the surviving regular leaves, remove a share from their
        // parent zones (the 115k→96k funnel step).
        let regular_alive: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&di| self.domains[di].category == Category::Responsive)
            .collect();
        let n_removed = (regular_alive.len() as f64 * 0.1525).round() as usize;
        let mut shuffled = regular_alive;
        shuffled.shuffle(&mut self.rng);
        for &di in shuffled.iter().take(n_removed) {
            let day = SimDate::from_ymd(2020, 3, 1) + self.rng.gen_range(0..330);
            self.domains[di].died = Some(day);
            self.domains[di].category = Category::Removed;
        }

        // Transient/disposable records: short-lived, partly hex-named —
        // present in PDNS yearly counts, filtered before querying.
        for (yi, year) in (calibration::FIRST_YEAR..=calibration::LAST_YEAR).enumerate() {
            let n_transient = (a_c * 0.45 * shape[yi]).round() as usize;
            for t in 0..n_transient {
                let label = if t % 2 == 0 {
                    format!("x{:08x}", self.rng.gen::<u32>())
                } else {
                    next_label(&mut self.rng, &AGENCY_WORDS)
                };
                let name: DomainName =
                    format!("{label}.{d_gov}").parse().expect("generated names parse");
                let start = SimDate::from_ymd(year, 1, 1) + self.rng.gen_range(0..358);
                let end = start + self.rng.gen_range(0..=5);
                self.domains.push(DomainRec {
                    name,
                    country_idx: ci,
                    created: start,
                    died: Some(end),
                    pdns_end_cap: None,
                    single: true,
                    category: Category::Historical,
                    parent_zone: d_gov.clone(),
                    epochs: Vec::new(),
                });
            }
        }
    }

    /// Phase D: deployment styles and NS hosts, with a yearly market
    /// rebalancing pass that tracks each provider's target trajectory.
    fn assign_market(&mut self, profiles: &[DiversityTarget]) {
        // 1. Decide private vs provider-hosted once per domain.
        let mut provider_domains: Vec<usize> = Vec::new();
        for di in 0..self.domains.len() {
            let rec = &self.domains[di];
            let private_p = if rec.single {
                calibration::D1NS_PRIVATE_SHARE
            } else {
                match rec.category {
                    Category::DGov => 0.95,
                    Category::Intermediate => 0.8,
                    // Dead intermediates must run on hosts nobody shares,
                    // so that killing them silences only their subtree.
                    Category::DeadIntermediate => 1.0,
                    _ => calibration::OVERALL_PRIVATE_SHARE - 0.02,
                }
            };
            // Transients never enter the provider market: they are
            // filtered out of every analysis, and letting them consume
            // provider quota would dilute the calibrated market shares.
            let transient =
                self.domains[di].died.is_some_and(|d| d - self.domains[di].created < 30);
            if self.rng.gen_bool(private_p) {
                let hosts = self.private_hosts(di, profiles);
                let rec = &mut self.domains[di];
                rec.epochs.push(EpochSpec {
                    start: rec.created,
                    style: DeploymentStyle::Private,
                    hosts,
                });
            } else if transient {
                let local = self.pick_local(self.domains[di].country_idx);
                let created = self.domains[di].created;
                self.push_provider_epoch(di, created, local);
            } else {
                provider_domains.push(di);
            }
        }

        // 2. Yearly rebalancing of provider-hosted domains.
        let named_ids: Vec<ProviderId> = self.catalog.named().map(|p| p.id).collect();
        let mut assignment: BTreeMap<usize, ProviderId> = BTreeMap::new();
        let mut counts: BTreeMap<ProviderId, usize> = BTreeMap::new();
        // Domains grouped by creation year for incremental assignment.
        let mut by_year: BTreeMap<i32, Vec<usize>> = BTreeMap::new();
        for &di in &provider_domains {
            by_year.entry(self.domains[di].created.year().clamp(2011, 2020)).or_default().push(di);
        }

        for year in calibration::FIRST_YEAR..=calibration::LAST_YEAR {
            // New domains start on a local provider of their country.
            for &di in by_year.get(&year).map(Vec::as_slice).unwrap_or(&[]) {
                let local = self.pick_local(self.domains[di].country_idx);
                assignment.insert(di, local);
                *counts.entry(local).or_default() += 1;
                self.push_provider_epoch(di, self.domains[di].created, local);
            }
            // Drop assignments of domains that died before this year.
            let jan1 = SimDate::from_ymd(year, 1, 1);
            assignment.retain(|&di, pid| {
                let dead = self.domains[di].died.is_some_and(|d| d < jan1);
                if dead {
                    *counts.get_mut(pid).expect("counted on insert") -= 1;
                }
                !dead
            });
            // Rebalance named providers toward their year targets.
            for &pid in &named_ids {
                let provider = self.catalog.get(pid).clone();
                let target = (provider.target_count(year) * self.cfg.scale).round() as i64;
                let have = *counts.get(&pid).unwrap_or(&0) as i64;
                // A dead provider (target 0) loses every customer; live
                // ones keep one customer of slack to avoid churn noise.
                let slack = i64::from(target > 0);
                if target > have {
                    self.recruit(&mut assignment, &mut counts, pid, (target - have) as usize, year);
                } else if have > target + slack {
                    self.shed(
                        &mut assignment,
                        &mut counts,
                        pid,
                        (have - target - slack) as usize,
                        year,
                    );
                }
            }
        }
    }

    /// Moves `want` local-hosted domains (in eligible countries) onto
    /// provider `pid`.
    fn recruit(
        &mut self,
        assignment: &mut BTreeMap<usize, ProviderId>,
        counts: &mut BTreeMap<ProviderId, usize>,
        pid: ProviderId,
        want: usize,
        year: i32,
    ) {
        let provider = self.catalog.get(pid).clone();
        let candidates: Vec<usize> = assignment
            .iter()
            .filter(|(_, &cur)| self.catalog.get(cur).is_local)
            .map(|(&di, _)| di)
            .filter(|&di| {
                let c = &self.countries[self.domains[di].country_idx];
                provider.eligible_in(c, year)
            })
            .collect();
        let mut picked = candidates;
        picked.shuffle(&mut self.rng);
        for di in picked.into_iter().take(want) {
            let old = assignment.insert(di, pid).expect("candidate was assigned");
            *counts.get_mut(&old).expect("old provider counted") -= 1;
            *counts.entry(pid).or_default() += 1;
            let when = self.migration_date(di, year);
            self.push_provider_epoch(di, when, pid);
        }
    }

    /// Moves `excess` customers of `pid` back onto local providers.
    fn shed(
        &mut self,
        assignment: &mut BTreeMap<usize, ProviderId>,
        counts: &mut BTreeMap<ProviderId, usize>,
        pid: ProviderId,
        excess: usize,
        year: i32,
    ) {
        let customers: Vec<usize> =
            assignment.iter().filter(|(_, &cur)| cur == pid).map(|(&di, _)| di).collect();
        let mut picked = customers;
        picked.shuffle(&mut self.rng);
        for di in picked.into_iter().take(excess) {
            let local = self.pick_local(self.domains[di].country_idx);
            assignment.insert(di, local);
            *counts.get_mut(&pid).expect("shedding counted provider") -= 1;
            *counts.entry(local).or_default() += 1;
            let when = self.migration_date(di, year);
            self.push_provider_epoch(di, when, local);
        }
    }

    fn migration_date(&mut self, di: usize, year: i32) -> SimDate {
        let start = SimDate::from_ymd(year, 1, 1) + self.rng.gen_range(5..360);
        let after_created = self.domains[di].created + 1;
        let last = self.domains[di].epochs.last().map(|e| e.start + 1).unwrap_or(after_created);
        start.max(after_created).max(last)
    }

    fn pick_local(&mut self, country_idx: usize) -> ProviderId {
        let code = self.countries[country_idx].code;
        let locals: Vec<ProviderId> = self.catalog.locals_of(code).map(|p| p.id).collect();
        assert!(!locals.is_empty(), "every country has local providers");
        locals[self.rng.gen_range(0..locals.len())]
    }

    /// Appends a provider epoch (choosing concrete hosts, d1P vs dual, and
    /// NS count) at `start`.
    fn push_provider_epoch(&mut self, di: usize, start: SimDate, pid: ProviderId) {
        let provider = self.catalog.get(pid).clone();
        let single_domain = self.domains[di].single;
        let dual = !single_domain && !self.rng.gen_bool(provider.d1p_rate);
        let pair_idx = self.rng.gen_range(0..provider.pool.len());
        let mut hosts: Vec<DomainName> = Vec::new();
        let pair = provider.pool.pair(pair_idx);
        if single_domain {
            hosts.push(pair.0.clone());
        } else {
            hosts.push(pair.0.clone());
            hosts.push(pair.1.clone());
            // Amazon-style providers hand out four nameservers.
            let four = matches!(provider.style, crate::provider::NamingStyle::AwsDns)
                || (!provider.is_local && self.rng.gen_bool(0.15));
            if four {
                let second = provider.pool.pair(pair_idx + 1);
                if second.0 != pair.0 {
                    hosts.push(second.0.clone());
                    hosts.push(second.1.clone());
                }
            }
        }
        let style = if dual {
            // Second provider: a local of the same country.
            let other = self.pick_local(self.domains[di].country_idx);
            if other != pid {
                let opair = self.catalog.get(other).pool.pair(self.rng.gen_range(0..8)).clone();
                hosts.pop();
                hosts.push(opair.0);
                DeploymentStyle::DualProvider(pid, other)
            } else {
                DeploymentStyle::SingleProvider(pid)
            }
        } else {
            DeploymentStyle::SingleProvider(pid)
        };
        hosts.dedup();
        let rec = &mut self.domains[di];
        // Guard chronology (migration dates are already pushed past the
        // previous epoch start, but clamp defensively).
        if let Some(last) = rec.epochs.last() {
            if start <= last.span_start() {
                return;
            }
        }
        rec.epochs.push(EpochSpec { start, style, hosts });
    }

    /// Hosts for a private deployment: the domain's own `ns1`/`ns2`, or
    /// the country's shared central pairs.
    fn private_hosts(&mut self, di: usize, profiles: &[DiversityTarget]) -> Vec<DomainName> {
        let (country_idx, name, single, category) = {
            let rec = &self.domains[di];
            (rec.country_idx, rec.name.clone(), rec.single, rec.category)
        };
        let code = self.countries[country_idx].code;
        let d_gov = self.d_gov[&code].clone();
        let _ = profiles;
        let central = if category == Category::DeadIntermediate {
            false
        } else {
            self.rng.gen_bool(0.45) || category == Category::DGov
        };
        let mk = |s: String| s.parse::<DomainName>().expect("generated host parses");
        if single {
            if central {
                vec![mk(format!("ns1.{d_gov}"))]
            } else {
                vec![mk(format!("ns1.{name}"))]
            }
        } else if central {
            // The apex rides on pair 0 (the well-placed one); other
            // centrally hosted zones land on any of the three pairs.
            let k = if category == Category::DGov { 0 } else { self.rng.gen_range(0..3) * 2 };
            vec![mk(format!("ns{}.{d_gov}", k + 1)), mk(format!("ns{}.{d_gov}", k + 2))]
        } else {
            let mut hosts = vec![mk(format!("ns1.{name}")), mk(format!("ns2.{name}"))];
            if self.rng.gen_bool(0.12) {
                hosts.push(mk(format!("ns3.{name}")));
            }
            hosts
        }
    }

    /// Phase E: feed the sensor network and return the PDNS database.
    fn feed_pdns(&mut self) -> govdns_pdns::PdnsDb {
        let mut sensors = SensorNetwork::new(self.cfg.sensor, self.cfg.seed ^ 0x44);
        let horizon_start = SimDate::from_ymd(2010, 6, 1);
        for rec in &self.domains {
            let end_of_life = rec
                .died
                .unwrap_or(self.collection)
                .min(rec.pdns_end_cap.unwrap_or(self.collection));
            for (i, epoch) in rec.epochs.iter().enumerate() {
                let next_start =
                    rec.epochs.get(i + 1).map(|e| e.start + (-1)).unwrap_or(end_of_life);
                let start = epoch.start.max(horizon_start);
                let end = next_start.min(end_of_life);
                if start > end {
                    continue;
                }
                let span = DateRange::new(start, end);
                for host in &epoch.hosts {
                    sensors.report_span(rec.name.clone(), RecordData::Ns(host.clone()), span);
                }
                // Sensors also observe the zone's SOA — the paper's
                // MNAME/RNAME classification evidence.
                if let Some(primary) = epoch.hosts.first() {
                    let rname_base = match epoch.style.providers().first() {
                        Some(&pid) => {
                            let provider = self.catalog.get(pid);
                            provider
                                .soa_rname
                                .clone()
                                .or_else(|| provider.primary_ns_domain())
                                .unwrap_or_else(|| rec.name.clone())
                        }
                        None => rec.name.clone(),
                    };
                    let rname: DomainName =
                        format!("hostmaster.{rname_base}").parse().expect("generated rname parses");
                    let soa = govdns_model::Soa::new(primary.clone(), rname);
                    sensors.report_span(rec.name.clone(), RecordData::Soa(soa), span);
                }
            }
        }
        sensors.into_db()
    }
}

impl EpochSpec {
    fn span_start(&self) -> SimDate {
        self.start
    }
}

/// Materializes a rec's epochs into a public timeline.
pub(crate) fn materialize_timeline(
    rec: &DomainRec,
    collection: SimDate,
    code: CountryCode,
) -> DomainTimeline {
    let mut t = DomainTimeline::new(rec.name.clone(), code);
    let end_of_life = rec.died.unwrap_or(collection);
    for (i, e) in rec.epochs.iter().enumerate() {
        let next = rec.epochs.get(i + 1).map(|n| n.start + (-1)).unwrap_or(end_of_life);
        if next < e.start {
            continue;
        }
        t.push(Epoch {
            span: DateRange::new(e.start, next),
            style: e.style,
            ns_hosts: e.hosts.clone(),
        });
    }
    t
}

/// Fig 2's yearly totals, normalized so 2020 = 1.
fn yearly_shape() -> [f64; 10] {
    let last = f64::from(calibration::DOMAINS_PER_YEAR[9]);
    let mut shape = [0.0; 10];
    for (i, &count) in calibration::DOMAINS_PER_YEAR.iter().enumerate() {
        shape[i] = f64::from(count) / last;
    }
    shape
}

/// Maps a measured-diversity target onto the *sampling* profile that
/// reproduces it. Downstream inflation (extra hosts, dual providers,
/// inconsistency injections, global provider farms) systematically raises
/// observed diversity above the sampled pair policies, so the sampler
/// under-shoots by a fitted margin.
pub(crate) fn sharpen(t: DiversityTarget) -> DiversityTarget {
    DiversityTarget {
        multi_ip: (1.0 - (1.0 - t.multi_ip) * 1.55).clamp(0.0, 1.0),
        multi_24: (1.0 - (1.0 - t.multi_24) * 1.55).clamp(0.0, 1.0),
        multi_asn: (t.multi_asn - 0.07).max(0.0),
        ..t
    }
}

/// Draws one placement policy from a country's diversity profile.
fn sample_policy(rng: &mut SmallRng, profile: DiversityTarget) -> DiversityPolicy {
    let r: f64 = rng.gen();
    if r < profile.multi_asn {
        DiversityPolicy::MultiAsn
    } else if r < profile.multi_24 {
        DiversityPolicy::MultiSlash24
    } else if r < profile.multi_ip {
        DiversityPolicy::SameSlash24
    } else {
        DiversityPolicy::SameIp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_normalized_and_dips() {
        let s = yearly_shape();
        assert!((s[9] - 1.0).abs() < 1e-9);
        assert!(s[0] < 0.62);
        assert!(s[8] > s[9], "2019 should exceed 2020");
    }

    #[test]
    fn policy_sampling_respects_profile() {
        let mut rng = SmallRng::seed_from_u64(3);
        let profile = DiversityTarget {
            country: "xx",
            domains: 0,
            multi_ip: 0.4,
            multi_24: 0.3,
            multi_asn: 0.1,
        };
        let mut same_ip = 0;
        let mut multi_asn = 0;
        for _ in 0..2000 {
            match sample_policy(&mut rng, profile) {
                DiversityPolicy::SameIp => same_ip += 1,
                DiversityPolicy::MultiAsn => multi_asn += 1,
                _ => {}
            }
        }
        // SameIp should be ~60%, MultiAsn ~10%.
        assert!((1000..1400).contains(&same_ip), "same_ip {same_ip}");
        assert!((120..290).contains(&multi_asn), "multi_asn {multi_asn}");
    }
}
