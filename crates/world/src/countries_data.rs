//! The 193 UN member states: ISO codes, UN M49 sub-regions, and size
//! tiers calibrated to the paper's per-country domain counts (Table I top
//! ten; Fig 4's heavy tail; the four named countries with fewer than ten
//! responsive domains).

use crate::country::{Country, CountryCode, EgovTier, SubRegion};

use EgovTier::{High, Low, Medium, Minimal};
use SubRegion::*;

/// Raw rows: `(iso2, name, sub-region, tier)`.
#[rustfmt::skip]
const TABLE: &[(&str, &str, SubRegion, EgovTier)] = &[
    // Northern Africa
    ("dz", "Algeria", NorthernAfrica, Medium),
    ("eg", "Egypt", NorthernAfrica, High),
    ("ly", "Libya", NorthernAfrica, Low),
    ("ma", "Morocco", NorthernAfrica, Medium),
    ("sd", "Sudan", NorthernAfrica, Low),
    ("tn", "Tunisia", NorthernAfrica, Medium),
    // Eastern Africa
    ("bi", "Burundi", EasternAfrica, Low),
    ("km", "Comoros", EasternAfrica, Minimal),
    ("dj", "Djibouti", EasternAfrica, Minimal),
    ("er", "Eritrea", EasternAfrica, Minimal),
    ("et", "Ethiopia", EasternAfrica, Low),
    ("ke", "Kenya", EasternAfrica, Medium),
    ("mg", "Madagascar", EasternAfrica, Low),
    ("mw", "Malawi", EasternAfrica, Low),
    ("mu", "Mauritius", EasternAfrica, Medium),
    ("mz", "Mozambique", EasternAfrica, Low),
    ("rw", "Rwanda", EasternAfrica, Medium),
    ("sc", "Seychelles", EasternAfrica, Low),
    ("so", "Somalia", EasternAfrica, Minimal),
    ("ss", "South Sudan", EasternAfrica, Minimal),
    ("tz", "Tanzania", EasternAfrica, Medium),
    ("ug", "Uganda", EasternAfrica, Medium),
    ("zm", "Zambia", EasternAfrica, Low),
    ("zw", "Zimbabwe", EasternAfrica, Low),
    // Middle Africa
    ("ao", "Angola", MiddleAfrica, Low),
    ("cm", "Cameroon", MiddleAfrica, Low),
    ("cf", "Central African Republic", MiddleAfrica, Minimal),
    ("td", "Chad", MiddleAfrica, Minimal),
    ("cg", "Congo", MiddleAfrica, Low),
    ("cd", "DR Congo", MiddleAfrica, Low),
    ("gq", "Equatorial Guinea", MiddleAfrica, Minimal),
    ("ga", "Gabon", MiddleAfrica, Low),
    ("st", "Sao Tome and Principe", MiddleAfrica, Minimal),
    // Southern Africa
    ("bw", "Botswana", SouthernAfrica, Low),
    ("sz", "Eswatini", SouthernAfrica, Low),
    ("ls", "Lesotho", SouthernAfrica, Low),
    ("na", "Namibia", SouthernAfrica, Low),
    ("za", "South Africa", SouthernAfrica, High),
    // Western Africa
    ("bj", "Benin", WesternAfrica, Low),
    ("bf", "Burkina Faso", WesternAfrica, Minimal),
    ("cv", "Cabo Verde", WesternAfrica, Low),
    ("ci", "Cote d'Ivoire", WesternAfrica, Low),
    ("gm", "Gambia", WesternAfrica, Minimal),
    ("gh", "Ghana", WesternAfrica, Medium),
    ("gn", "Guinea", WesternAfrica, Minimal),
    ("gw", "Guinea-Bissau", WesternAfrica, Minimal),
    ("lr", "Liberia", WesternAfrica, Minimal),
    ("ml", "Mali", WesternAfrica, Low),
    ("mr", "Mauritania", WesternAfrica, Minimal),
    ("ne", "Niger", WesternAfrica, Low),
    ("ng", "Nigeria", WesternAfrica, Medium),
    ("sn", "Senegal", WesternAfrica, Medium),
    ("sl", "Sierra Leone", WesternAfrica, Minimal),
    ("tg", "Togo", WesternAfrica, Low),
    // Caribbean
    ("ag", "Antigua and Barbuda", Caribbean, Minimal),
    ("bs", "Bahamas", Caribbean, Minimal),
    ("bb", "Barbados", Caribbean, Minimal),
    ("cu", "Cuba", Caribbean, Medium),
    ("dm", "Dominica", Caribbean, Minimal),
    ("do", "Dominican Republic", Caribbean, Medium),
    ("gd", "Grenada", Caribbean, Minimal),
    ("ht", "Haiti", Caribbean, Low),
    ("jm", "Jamaica", Caribbean, Medium),
    ("kn", "Saint Kitts and Nevis", Caribbean, Minimal),
    ("lc", "Saint Lucia", Caribbean, Minimal),
    ("vc", "Saint Vincent and the Grenadines", Caribbean, Minimal),
    ("tt", "Trinidad and Tobago", Caribbean, Low),
    // Central America
    ("bz", "Belize", CentralAmerica, Minimal),
    ("cr", "Costa Rica", CentralAmerica, Medium),
    ("sv", "El Salvador", CentralAmerica, Medium),
    ("gt", "Guatemala", CentralAmerica, Medium),
    ("hn", "Honduras", CentralAmerica, Low),
    ("mx", "Mexico", CentralAmerica, EgovTier::Top10(5_256)),
    ("ni", "Nicaragua", CentralAmerica, Low),
    ("pa", "Panama", CentralAmerica, Medium),
    // South America
    ("ar", "Argentina", SouthAmerica, EgovTier::Top10(2_795)),
    ("bo", "Bolivia", SouthAmerica, Minimal),
    ("br", "Brazil", SouthAmerica, EgovTier::Top10(7_271)),
    ("cl", "Chile", SouthAmerica, High),
    ("co", "Colombia", SouthAmerica, High),
    ("ec", "Ecuador", SouthAmerica, High),
    ("gy", "Guyana", SouthAmerica, Minimal),
    ("py", "Paraguay", SouthAmerica, Medium),
    ("pe", "Peru", SouthAmerica, High),
    ("sr", "Suriname", SouthAmerica, Minimal),
    ("uy", "Uruguay", SouthAmerica, Medium),
    ("ve", "Venezuela", SouthAmerica, Medium),
    // Northern America
    ("ca", "Canada", NorthernAmerica, High),
    ("us", "United States", NorthernAmerica, High),
    // Central Asia
    ("kz", "Kazakhstan", CentralAsia, High),
    ("kg", "Kyrgyzstan", CentralAsia, Low),
    ("tj", "Tajikistan", CentralAsia, Low),
    ("tm", "Turkmenistan", CentralAsia, Minimal),
    ("uz", "Uzbekistan", CentralAsia, High),
    // Eastern Asia
    ("cn", "China", EasternAsia, EgovTier::Top10(13_623)),
    ("jp", "Japan", EasternAsia, High),
    ("kp", "North Korea", EasternAsia, Minimal),
    ("kr", "South Korea", EasternAsia, High),
    ("mn", "Mongolia", EasternAsia, Low),
    // South-eastern Asia
    ("bn", "Brunei", SouthEasternAsia, Minimal),
    ("kh", "Cambodia", SouthEasternAsia, Low),
    ("id", "Indonesia", SouthEasternAsia, High),
    ("la", "Laos", SouthEasternAsia, Low),
    ("my", "Malaysia", SouthEasternAsia, High),
    ("mm", "Myanmar", SouthEasternAsia, Low),
    ("ph", "Philippines", SouthEasternAsia, High),
    ("sg", "Singapore", SouthEasternAsia, Medium),
    ("th", "Thailand", SouthEasternAsia, EgovTier::Top10(8_941)),
    ("tl", "Timor-Leste", SouthEasternAsia, Minimal),
    ("vn", "Viet Nam", SouthEasternAsia, High),
    // Southern Asia
    ("af", "Afghanistan", SouthernAsia, Low),
    ("bd", "Bangladesh", SouthernAsia, Medium),
    ("bt", "Bhutan", SouthernAsia, Minimal),
    ("in", "India", SouthernAsia, EgovTier::Top10(4_426)),
    ("ir", "Iran", SouthernAsia, Medium),
    ("mv", "Maldives", SouthernAsia, Minimal),
    ("np", "Nepal", SouthernAsia, Low),
    ("pk", "Pakistan", SouthernAsia, Medium),
    ("lk", "Sri Lanka", SouthernAsia, Medium),
    // Western Asia
    ("am", "Armenia", WesternAsia, Low),
    ("az", "Azerbaijan", WesternAsia, Medium),
    ("bh", "Bahrain", WesternAsia, Low),
    ("cy", "Cyprus", WesternAsia, Medium),
    ("ge", "Georgia", WesternAsia, Medium),
    ("iq", "Iraq", WesternAsia, Low),
    ("il", "Israel", WesternAsia, High),
    ("jo", "Jordan", WesternAsia, Medium),
    ("kw", "Kuwait", WesternAsia, Low),
    ("lb", "Lebanon", WesternAsia, Low),
    ("om", "Oman", WesternAsia, Low),
    ("qa", "Qatar", WesternAsia, Low),
    ("sa", "Saudi Arabia", WesternAsia, High),
    ("sy", "Syria", WesternAsia, Minimal),
    ("tr", "Turkey", WesternAsia, EgovTier::Top10(4_528)),
    ("ae", "United Arab Emirates", WesternAsia, Minimal),
    ("ye", "Yemen", WesternAsia, Minimal),
    // Eastern Europe
    ("by", "Belarus", EasternEurope, Medium),
    ("bg", "Bulgaria", EasternEurope, Minimal),
    ("cz", "Czechia", EasternEurope, High),
    ("hu", "Hungary", EasternEurope, High),
    ("pl", "Poland", EasternEurope, High),
    ("md", "Moldova", EasternEurope, Medium),
    ("ro", "Romania", EasternEurope, High),
    ("ru", "Russia", EasternEurope, High),
    ("sk", "Slovakia", EasternEurope, Medium),
    ("ua", "Ukraine", EasternEurope, EgovTier::Top10(3_421)),
    // Northern Europe
    ("dk", "Denmark", NorthernEurope, High),
    ("ee", "Estonia", NorthernEurope, Medium),
    ("fi", "Finland", NorthernEurope, High),
    ("is", "Iceland", NorthernEurope, Low),
    ("ie", "Ireland", NorthernEurope, High),
    ("lv", "Latvia", NorthernEurope, Medium),
    ("lt", "Lithuania", NorthernEurope, Medium),
    ("no", "Norway", NorthernEurope, High),
    ("se", "Sweden", NorthernEurope, High),
    ("gb", "United Kingdom", NorthernEurope, EgovTier::Top10(4_788)),
    // Southern Europe
    ("al", "Albania", SouthernEurope, Low),
    ("ad", "Andorra", SouthernEurope, Minimal),
    ("ba", "Bosnia and Herzegovina", SouthernEurope, Low),
    ("hr", "Croatia", SouthernEurope, Medium),
    ("gr", "Greece", SouthernEurope, High),
    ("it", "Italy", SouthernEurope, High),
    ("mt", "Malta", SouthernEurope, Low),
    ("me", "Montenegro", SouthernEurope, Low),
    ("mk", "North Macedonia", SouthernEurope, Low),
    ("pt", "Portugal", SouthernEurope, High),
    ("sm", "San Marino", SouthernEurope, Minimal),
    ("rs", "Serbia", SouthernEurope, Medium),
    ("si", "Slovenia", SouthernEurope, Medium),
    ("es", "Spain", SouthernEurope, High),
    // Western Europe
    ("at", "Austria", WesternEurope, High),
    ("be", "Belgium", WesternEurope, High),
    ("fr", "France", WesternEurope, High),
    ("de", "Germany", WesternEurope, High),
    ("li", "Liechtenstein", WesternEurope, Minimal),
    ("lu", "Luxembourg", WesternEurope, Medium),
    ("mc", "Monaco", WesternEurope, Minimal),
    ("nl", "Netherlands", WesternEurope, High),
    ("ch", "Switzerland", WesternEurope, High),
    // Australia and New Zealand
    ("au", "Australia", AustraliaNewZealand, EgovTier::Top10(3_707)),
    ("nz", "New Zealand", AustraliaNewZealand, High),
    // Melanesia
    ("fj", "Fiji", Melanesia, Low),
    ("pg", "Papua New Guinea", Melanesia, Minimal),
    ("sb", "Solomon Islands", Melanesia, Minimal),
    ("vu", "Vanuatu", Melanesia, Minimal),
    // Micronesia
    ("ki", "Kiribati", Micronesia, Minimal),
    ("mh", "Marshall Islands", Micronesia, Minimal),
    ("fm", "Micronesia", Micronesia, Minimal),
    ("nr", "Nauru", Micronesia, Minimal),
    ("pw", "Palau", Micronesia, Minimal),
    // Polynesia
    ("ws", "Samoa", Polynesia, Minimal),
    ("to", "Tonga", Polynesia, Minimal),
    ("tv", "Tuvalu", Polynesia, Minimal),
];

/// The 193 UN member countries of the synthetic world.
pub fn countries() -> Vec<Country> {
    TABLE
        .iter()
        .map(|&(code, name, sub_region, tier)| Country {
            code: CountryCode::new(code),
            name,
            sub_region,
            tier,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn exactly_193_members_with_unique_codes() {
        let all = countries();
        assert_eq!(all.len(), 193);
        let codes: BTreeSet<_> = all.iter().map(|c| c.code).collect();
        assert_eq!(codes.len(), 193);
    }

    #[test]
    fn exactly_ten_top10_with_paper_counts() {
        let all = countries();
        let top: BTreeMap<&str, u32> = all
            .iter()
            .filter_map(|c| match c.tier {
                EgovTier::Top10(n) => Some((c.name, n)),
                _ => None,
            })
            .collect();
        assert_eq!(top.len(), 10);
        assert_eq!(top["China"], 13_623);
        assert_eq!(top["Argentina"], 2_795);
        let sum: u32 = top.values().sum();
        assert_eq!(sum, 58_756);
    }

    #[test]
    fn every_sub_region_has_a_non_top10_member() {
        // Needed for the 22 + 10 = 32 sub-region groups of Tables II-III.
        let all = countries();
        for sr in SubRegion::all() {
            assert!(
                all.iter().any(|c| c.sub_region == *sr && !c.is_top10()),
                "sub-region {sr} has no non-top-10 country"
            );
        }
    }

    #[test]
    fn paper_named_minimal_countries_are_minimal() {
        let all = countries();
        for code in ["bo", "bg", "bf", "ae"] {
            let c = all.iter().find(|c| c.code.as_str() == code).unwrap();
            assert_eq!(c.tier, EgovTier::Minimal, "{} should be Minimal", c.name);
        }
    }
}
