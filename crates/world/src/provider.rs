use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::country::{Country, CountryCode, EgovTier};
use crate::deployment::{DiversityPolicy, NsPool};

/// Index of a provider within the [`ProviderCatalog`].
pub type ProviderId = usize;

/// Calendar span of the market model.
const FIRST_YEAR: i32 = crate::calibration::FIRST_YEAR;
const LAST_YEAR: i32 = crate::calibration::LAST_YEAR;

/// How a provider names its servers — enough structure to reproduce the
/// classification rules the paper applies (regex for Amazon, registered
/// domains and SOA fields for the rest).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NamingStyle {
    /// `ns-<n>.awsdns-<k>.{com,net,org,info}` — matched by the `awsdns-`
    /// label prefix, the paper's regex case.
    AwsDns,
    /// `<word>.ns.cloudflare.com`.
    CloudflareNs,
    /// `ns1-<k>.azure-dns.com` / `ns2-<k>.azure-dns.net`.
    AzureDns,
    /// `ns1.p<k>.dynect.net`.
    DynStyle,
    /// `pns<k>.cloudns.net`.
    PnsNumbered {
        /// Registered domain the hosts live under.
        domain: String,
    },
    /// `ns<k>.<domain>` — the common shared-hosting shape.
    Numbered {
        /// Registered (or deeper) domain the hosts live under.
        domain: String,
    },
    /// White-label clusters: `ns{1,2}.dns-cluster<k>.net`. The hostnames
    /// do not identify the provider at all — only the SOA RNAME does,
    /// which is exactly the case the paper's MNAME/RNAME matching exists
    /// for.
    WhiteLabel,
}

const CLOUDFLARE_WORDS: [&str; 24] = [
    "ada", "ben", "cruz", "dee", "elma", "finn", "gail", "hugo", "igor", "jill", "kai", "lara",
    "max", "nina", "oleg", "pam", "quin", "rosa", "sam", "tara", "ursa", "vida", "walt", "zoe",
];

impl NamingStyle {
    /// The `idx`-th nameserver pair in this style.
    pub fn host_pair(&self, idx: usize) -> (DomainName, DomainName) {
        let parse = |s: String| s.parse().expect("generated hostnames are valid");
        match self {
            NamingStyle::AwsDns => {
                const TLDS: [&str; 4] = ["com", "net", "org", "info"];
                let a = format!("ns-{}.awsdns-{:02}.{}", (idx * 2) % 1024, idx % 64, TLDS[idx % 4]);
                let b = format!(
                    "ns-{}.awsdns-{:02}.{}",
                    (idx * 2 + 1) % 1024,
                    (idx + 17) % 64,
                    TLDS[(idx + 1) % 4]
                );
                (parse(a), parse(b))
            }
            NamingStyle::CloudflareNs => {
                let n = CLOUDFLARE_WORDS.len();
                let a = CLOUDFLARE_WORDS[idx % n];
                let b = CLOUDFLARE_WORDS[(idx + 7) % n];
                (parse(format!("{a}.ns.cloudflare.com")), parse(format!("{b}.ns.cloudflare.com")))
            }
            NamingStyle::AzureDns => (
                parse(format!("ns1-{:02}.azure-dns.com", idx % 100)),
                parse(format!("ns2-{:02}.azure-dns.net", idx % 100)),
            ),
            NamingStyle::DynStyle => (
                parse(format!("ns1.p{:02}.dynect.net", idx % 100)),
                parse(format!("ns2.p{:02}.dynect.net", idx % 100)),
            ),
            NamingStyle::PnsNumbered { domain } => (
                parse(format!("pns{}.{domain}", 11 + 2 * idx)),
                parse(format!("pns{}.{domain}", 12 + 2 * idx)),
            ),
            NamingStyle::Numbered { domain } => (
                parse(format!("ns{}.{domain}", 2 * idx + 1)),
                parse(format!("ns{}.{domain}", 2 * idx + 2)),
            ),
            NamingStyle::WhiteLabel => (
                parse(format!("ns1.dns-cluster{idx}.net")),
                parse(format!("ns2.dns-cluster{idx}.net")),
            ),
        }
    }

    /// The registered domains hostnames of this style fall under (used to
    /// build classification matchers and the dangling-NS registrar checks).
    pub fn registered_domains(&self) -> Vec<DomainName> {
        let parse = |s: &str| s.parse().expect("static domains are valid");
        match self {
            NamingStyle::AwsDns => Vec::new(), // matched by label prefix instead
            NamingStyle::CloudflareNs => vec![parse("cloudflare.com")],
            NamingStyle::AzureDns => vec![parse("azure-dns.com"), parse("azure-dns.net")],
            NamingStyle::DynStyle => vec![parse("dynect.net")],
            NamingStyle::PnsNumbered { domain } | NamingStyle::Numbered { domain } => {
                let name: DomainName = domain.parse().expect("generated domains are valid");
                vec![name.suffix(2)]
            }
            // White-label hostnames are deliberately anonymous.
            NamingStyle::WhiteLabel => Vec::new(),
        }
    }
}

/// A third-party DNS service provider in the market model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provider {
    /// Catalog index.
    pub id: ProviderId,
    /// Display / classification label (`cloudflare.com`, `AWS DNS`, ...).
    pub label: String,
    /// Hostname scheme.
    pub style: NamingStyle,
    /// `Some(cc)` restricts the provider to one country (DNSPod, HiChina).
    pub scope: Option<CountryCode>,
    /// Customer-domain count at paper scale in 2011.
    pub count_2011: f64,
    /// Customer-domain count at paper scale in 2020.
    pub count_2020: f64,
    /// Countries the provider is marketable in, 2011.
    pub countries_2011: u32,
    /// Countries the provider is marketable in, 2020.
    pub countries_2020: u32,
    /// Fraction of customers using only this provider (Table II's d1P).
    pub d1p_rate: f64,
    /// Topological placement of the provider's pairs.
    pub diversity: DiversityPolicy,
    /// The provider's nameserver pool.
    pub pool: NsPool,
    /// Branded domain appearing in customer zones' SOA RNAME (hostmaster
    /// mailbox), when the provider sets one.
    pub soa_rname: Option<DomainName>,
    /// Whether this is a generated per-country local host.
    pub is_local: bool,
}

impl Provider {
    /// Target customer count at paper scale for `year` (log-space
    /// interpolation between the 2011 and 2020 anchors, so
    /// orders-of-magnitude growth looks like the paper's).
    pub fn target_count(&self, year: i32) -> f64 {
        let year = year.clamp(FIRST_YEAR, LAST_YEAR);
        let t = f64::from(year - FIRST_YEAR) / f64::from(LAST_YEAR - FIRST_YEAR);
        let lo = self.count_2011.max(0.5).ln();
        let hi = self.count_2020.max(0.5).ln();
        let v = (lo + (hi - lo) * t).exp();
        if v < 0.75 {
            0.0
        } else {
            v
        }
    }

    /// Number of countries the provider is marketable in during `year`.
    pub fn eligible_country_quota(&self, year: i32) -> u32 {
        let year = year.clamp(FIRST_YEAR, LAST_YEAR);
        let t = f64::from(year - FIRST_YEAR) / f64::from(LAST_YEAR - FIRST_YEAR);
        let lo = f64::from(self.countries_2011);
        let hi = f64::from(self.countries_2020);
        (lo + (hi - lo) * t).round() as u32
    }

    /// Whether the provider is marketable in `country` during `year`.
    ///
    /// Eligibility is a deterministic ranking (a stable hash of provider
    /// and country), so a provider's footprint grows monotonically as its
    /// quota grows — countries don't flap in and out.
    pub fn eligible_in(&self, country: &Country, year: i32) -> bool {
        if let Some(cc) = self.scope {
            return cc == country.code;
        }
        let quota = self.eligible_country_quota(year);
        if quota >= 193 {
            return true;
        }
        let rank = stable_rank(self.id as u64, country.code);
        // Large e-governments adopt earlier: bias their rank downward.
        let bias = match country.tier {
            EgovTier::Top10(_) => 0.35,
            EgovTier::High => 0.6,
            EgovTier::Medium => 0.85,
            EgovTier::Low => 1.0,
            EgovTier::Minimal => 1.15,
        };
        (rank * bias) < f64::from(quota) / 193.0
    }

    /// The provider's primary registered nameserver domain, if any.
    pub fn primary_ns_domain(&self) -> Option<DomainName> {
        self.style.registered_domains().into_iter().next()
    }
}

/// Deterministic rank in `[0, 1)` for (provider, country).
fn stable_rank(id: u64, code: CountryCode) -> f64 {
    let bytes = code.as_str().as_bytes();
    let mut z = id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(bytes[0]) << 8 | u64::from(bytes[1]));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// What a classification rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchTarget {
    /// Match against the nameserver hostname.
    Hostname,
    /// Match against the SOA MNAME/RNAME fields (the paper's fallback
    /// for providers whose hostnames are not distinctive).
    SoaName,
}

/// How the measurement pipeline recognizes a provider from a nameserver
/// hostname or a zone's SOA fields — public knowledge, the same kind the
/// paper applies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderMatcher {
    /// Classification label.
    pub label: String,
    /// The rule.
    pub rule: MatchRule,
    /// What the rule applies to.
    pub target: MatchTarget,
}

/// One classification rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchRule {
    /// The hostname's second label starts with this prefix (Amazon's
    /// `awsdns-` pattern).
    SecondLabelPrefix(String),
    /// The hostname falls under this registered domain.
    RegisteredDomain(DomainName),
}

impl ProviderMatcher {
    /// Whether `host` matches this rule.
    pub fn matches(&self, host: &DomainName) -> bool {
        match &self.rule {
            MatchRule::SecondLabelPrefix(prefix) => {
                let labels = host.labels();
                labels.len() >= 2 && labels[1].as_str().starts_with(prefix.as_str())
            }
            MatchRule::RegisteredDomain(dom) => host.is_within(dom),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spec(
    label: &str,
    style: NamingStyle,
    scope: Option<&str>,
    count_2011: f64,
    count_2020: f64,
    countries_2011: u32,
    countries_2020: u32,
    d1p_rate: f64,
    diversity: DiversityPolicy,
    pool_pairs: usize,
) -> Provider {
    let pairs = (0..pool_pairs.max(1)).map(|i| style.host_pair(i)).collect();
    Provider {
        id: 0, // assigned on catalog insertion
        label: label.to_owned(),
        style,
        scope: scope.map(CountryCode::new),
        count_2011,
        count_2020,
        countries_2011,
        countries_2020,
        d1p_rate,
        diversity,
        pool: NsPool::new(pairs),
        soa_rname: None,
        is_local: false,
    }
}

fn named_providers() -> Vec<Provider> {
    use DiversityPolicy::{MultiAsn, MultiSlash24};
    let num = |d: &str| NamingStyle::Numbered { domain: d.to_owned() };
    vec![
        spec("AWS DNS", NamingStyle::AwsDns, None, 5.0, 5_193.0, 3, 78, 0.91, MultiAsn, 256),
        spec(
            "cloudflare.com",
            NamingStyle::CloudflareNs,
            None,
            12.0,
            4_136.0,
            8,
            100,
            0.75,
            MultiSlash24,
            120,
        ),
        spec("Azure DNS", NamingStyle::AzureDns, None, 0.0, 1_574.0, 0, 42, 0.73, MultiAsn, 100),
        spec(
            "dnspod.net",
            num("dnspod.net"),
            Some("cn"),
            373.0,
            700.0,
            1,
            1,
            0.82,
            MultiSlash24,
            40,
        ),
        spec(
            "dnsmadeeasy.com",
            num("dnsmadeeasy.com"),
            None,
            89.0,
            254.0,
            14,
            18,
            0.86,
            MultiAsn,
            20,
        ),
        spec("Dyn", NamingStyle::DynStyle, None, 7.0, 170.0, 3, 15, 0.77, MultiSlash24, 20),
        spec(
            "domaincontrol.com",
            num("domaincontrol.com"),
            None,
            283.0,
            1_582.0,
            50,
            72,
            0.80,
            MultiSlash24,
            80,
        ),
        spec("ultradns.net", num("ultradns.net"), None, 15.0, 66.0, 4, 7, 0.86, MultiAsn, 10),
        spec(
            "websitewelcome.com",
            num("websitewelcome.com"),
            None,
            424.0,
            745.0,
            56,
            57,
            0.80,
            MultiSlash24,
            60,
        ),
        spec(
            "zoneedit.com",
            num("zoneedit.com"),
            None,
            182.0,
            120.0,
            34,
            20,
            0.80,
            MultiSlash24,
            20,
        ),
        spec(
            "dreamhost.com",
            num("dreamhost.com"),
            None,
            243.0,
            210.0,
            31,
            22,
            0.80,
            MultiSlash24,
            30,
        ),
        spec(
            "bluehost.com",
            num("bluehost.com"),
            None,
            134.0,
            432.0,
            31,
            66,
            0.80,
            MultiSlash24,
            40,
        ),
        spec(
            "Hostgator",
            num("hostgator.com"),
            None,
            183.0,
            1_536.0,
            31,
            62,
            0.80,
            MultiSlash24,
            70,
        ),
        spec(
            "ixwebhosting.com",
            num("ixwebhosting.com"),
            None,
            98.0,
            40.0,
            30,
            10,
            0.80,
            MultiSlash24,
            12,
        ),
        spec(
            "hostmonster.com",
            num("hostmonster.com"),
            None,
            103.0,
            90.0,
            29,
            13,
            0.80,
            MultiSlash24,
            12,
        ),
        spec("everydns.net", num("everydns.net"), None, 259.0, 0.0, 28, 0, 0.80, MultiSlash24, 12),
        spec("pipedns.com", num("pipedns.com"), None, 48.0, 35.0, 26, 9, 0.80, MultiSlash24, 8),
        spec(
            "stabletransit.com",
            num("stabletransit.com"),
            None,
            57.0,
            55.0,
            24,
            11,
            0.80,
            MultiSlash24,
            8,
        ),
        spec(
            "digitalocean.com",
            num("digitalocean.com"),
            None,
            0.0,
            429.0,
            0,
            52,
            0.80,
            MultiSlash24,
            3,
        ),
        spec(
            "microsoftonline.com",
            num("bdm.microsoftonline.com"),
            None,
            0.0,
            135.0,
            0,
            46,
            0.60,
            MultiAsn,
            10,
        ),
        spec("wixdns.net", num("wixdns.net"), None, 0.0, 324.0, 0, 44, 0.90, MultiSlash24, 4),
        spec(
            "cloudns.net",
            NamingStyle::PnsNumbered { domain: "cloudns.net".to_owned() },
            None,
            0.0,
            225.0,
            0,
            43,
            0.80,
            MultiSlash24,
            20,
        ),
        spec(
            "hichina.com",
            num("hichina.com"),
            Some("cn"),
            2_000.0,
            6_900.0,
            1,
            1,
            0.85,
            MultiSlash24,
            120,
        ),
        spec(
            "xincache.com",
            num("xincache.com"),
            Some("cn"),
            1_050.0,
            3_450.0,
            1,
            1,
            0.85,
            MultiSlash24,
            60,
        ),
        spec(
            "dns-diy.com",
            num("dns-diy.com"),
            Some("cn"),
            650.0,
            1_960.0,
            1,
            1,
            0.85,
            MultiAsn,
            40,
        ),
        {
            // A white-label DNS wholesaler: anonymous cluster hostnames,
            // identifiable only through the SOA RNAME it stamps on
            // customer zones.
            let mut p = spec(
                "brandhost.example",
                NamingStyle::WhiteLabel,
                None,
                150.0,
                620.0,
                12,
                26,
                0.85,
                MultiSlash24,
                30,
            );
            p.soa_rname = Some("brandhost.example".parse().expect("static domain parses"));
            p
        },
    ]
}

/// The provider market: the ~25 named providers of Tables II–III plus
/// per-country local hosting companies that carry the heterogeneous bulk
/// of the ecosystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderCatalog {
    providers: Vec<Provider>,
}

impl ProviderCatalog {
    /// Builds the catalog for a set of countries. `local_diversity` picks
    /// each local provider's placement policy from its country's profile.
    pub fn build<F>(countries: &[Country], mut local_diversity: F) -> Self
    where
        F: FnMut(&Country, usize) -> DiversityPolicy,
    {
        let mut providers = named_providers();
        for country in countries {
            let locals = match country.tier {
                EgovTier::Top10(_) => 8,
                EgovTier::High => 5,
                EgovTier::Medium => 3,
                EgovTier::Low => 2,
                EgovTier::Minimal => 1,
            };
            for j in 0..locals {
                let cc = country.code.as_str();
                let domain = format!("webhost{}.{}", j + 1, cc);
                let style = NamingStyle::Numbered { domain };
                let pairs = (0..24).map(|i| style.host_pair(i)).collect();
                providers.push(Provider {
                    id: 0,
                    label: format!("webhost{}.{}", j + 1, cc),
                    style,
                    scope: Some(country.code),
                    count_2011: 0.0, // locals absorb whatever the named market leaves
                    count_2020: 0.0,
                    countries_2011: 1,
                    countries_2020: 1,
                    d1p_rate: 0.9,
                    diversity: local_diversity(country, j),
                    pool: NsPool::new(pairs),
                    soa_rname: None,
                    is_local: true,
                });
            }
        }
        for (i, p) in providers.iter_mut().enumerate() {
            p.id = i;
        }
        ProviderCatalog { providers }
    }

    /// The provider with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range — ids come from this catalog.
    pub fn get(&self, id: ProviderId) -> &Provider {
        &self.providers[id]
    }

    /// All providers.
    pub fn iter(&self) -> impl Iterator<Item = &Provider> {
        self.providers.iter()
    }

    /// Named (non-local) providers.
    pub fn named(&self) -> impl Iterator<Item = &Provider> {
        self.providers.iter().filter(|p| !p.is_local)
    }

    /// Local providers available in `country`.
    pub fn locals_of(&self, code: CountryCode) -> impl Iterator<Item = &Provider> + '_ {
        self.providers.iter().filter(move |p| p.is_local && p.scope == Some(code))
    }

    /// Number of providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }

    /// The classification rule set the measurement pipeline uses —
    /// equivalent to the paper's public knowledge of provider naming.
    pub fn matchers(&self) -> Vec<ProviderMatcher> {
        let mut out = Vec::new();
        for p in &self.providers {
            match &p.style {
                NamingStyle::AwsDns => out.push(ProviderMatcher {
                    label: p.label.clone(),
                    rule: MatchRule::SecondLabelPrefix("awsdns-".to_owned()),
                    target: MatchTarget::Hostname,
                }),
                style => {
                    for dom in style.registered_domains() {
                        out.push(ProviderMatcher {
                            label: p.label.clone(),
                            rule: MatchRule::RegisteredDomain(dom),
                            target: MatchTarget::Hostname,
                        });
                    }
                }
            }
            if let Some(rname) = &p.soa_rname {
                out.push(ProviderMatcher {
                    label: p.label.clone(),
                    rule: MatchRule::RegisteredDomain(rname.clone()),
                    target: MatchTarget::SoaName,
                });
            }
        }
        out
    }

    /// Classifies one nameserver hostname.
    pub fn classify(&self, host: &DomainName) -> Option<&Provider> {
        // Amazon's prefix rule first, then registered-domain lookups.
        if host.labels().len() >= 2 && host.labels()[1].as_str().starts_with("awsdns-") {
            return self.providers.iter().find(|p| matches!(p.style, NamingStyle::AwsDns));
        }
        let registered = host.suffix(2);
        self.providers.iter().find(|p| {
            p.style.registered_domains().iter().any(|d| *d == registered || host.is_within(d))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::countries_data::countries;

    fn catalog() -> ProviderCatalog {
        ProviderCatalog::build(&countries(), |_, _| DiversityPolicy::MultiSlash24)
    }

    #[test]
    fn named_providers_present_with_anchor_counts() {
        let cat = catalog();
        let aws = cat.named().find(|p| p.label == "AWS DNS").unwrap();
        assert_eq!(aws.count_2020, 5_193.0);
        let cf = cat.named().find(|p| p.label == "cloudflare.com").unwrap();
        assert_eq!(cf.count_2011, 12.0);
        assert_eq!(cat.named().count(), 26);
    }

    #[test]
    fn growth_interpolation_is_monotone_for_growers() {
        let cat = catalog();
        let aws = cat.named().find(|p| p.label == "AWS DNS").unwrap();
        let mut prev = 0.0;
        for y in 2011..=2020 {
            let c = aws.target_count(y);
            assert!(c >= prev, "AWS count should grow: {prev} -> {c} in {y}");
            prev = c;
        }
        assert!((aws.target_count(2020) - 5_193.0).abs() < 1.0);
    }

    #[test]
    fn dead_provider_reaches_zero() {
        let cat = catalog();
        let everydns = cat.named().find(|p| p.label == "everydns.net").unwrap();
        assert!(everydns.target_count(2011) > 200.0);
        assert_eq!(everydns.target_count(2020), 0.0);
    }

    #[test]
    fn scoped_providers_stay_scoped() {
        let cat = catalog();
        let all = countries();
        let cn = all.iter().find(|c| c.code.as_str() == "cn").unwrap();
        let br = all.iter().find(|c| c.code.as_str() == "br").unwrap();
        let dnspod = cat.named().find(|p| p.label == "dnspod.net").unwrap();
        assert!(dnspod.eligible_in(cn, 2020));
        assert!(!dnspod.eligible_in(br, 2020));
    }

    #[test]
    fn eligibility_grows_over_time() {
        let cat = catalog();
        let all = countries();
        let cf = cat.named().find(|p| p.label == "cloudflare.com").unwrap();
        let count_2011 = all.iter().filter(|c| cf.eligible_in(c, 2011)).count();
        let count_2020 = all.iter().filter(|c| cf.eligible_in(c, 2020)).count();
        assert!(count_2011 < 25, "cloudflare 2011 spread {count_2011}");
        assert!(count_2020 > 70, "cloudflare 2020 spread {count_2020}");
    }

    #[test]
    fn classification_recognizes_each_style() {
        let cat = catalog();
        let cases = [
            ("ns-432.awsdns-21.net", "AWS DNS"),
            ("ben.ns.cloudflare.com", "cloudflare.com"),
            ("ns1-03.azure-dns.com", "Azure DNS"),
            ("ns2.p09.dynect.net", "Dyn"),
            ("pns13.cloudns.net", "cloudns.net"),
            ("ns7.domaincontrol.com", "domaincontrol.com"),
            ("ns3.bdm.microsoftonline.com", "microsoftonline.com"),
            ("ns2.webhost1.br", "webhost1.br"),
        ];
        for (host, label) in cases {
            let got = cat.classify(&host.parse().unwrap()).map(|p| p.label.as_str());
            assert_eq!(got, Some(label), "classifying {host}");
        }
        assert!(cat.classify(&"ns1.gov.br".parse().unwrap()).is_none());
    }

    #[test]
    fn matchers_cover_the_same_cases() {
        let cat = catalog();
        let matchers = cat.matchers();
        let host: DomainName = "ns-12.awsdns-63.org".parse().unwrap();
        assert!(matchers.iter().any(|m| m.matches(&host) && m.label == "AWS DNS"));
        let host: DomainName = "zoe.ns.cloudflare.com".parse().unwrap();
        assert!(matchers.iter().any(|m| m.matches(&host) && m.label == "cloudflare.com"));
        let host: DomainName = "ns1.gov.br".parse().unwrap();
        assert!(!matchers.iter().any(|m| m.matches(&host)));
    }

    #[test]
    fn host_pairs_are_distinct_within_pair() {
        for style in [
            NamingStyle::AwsDns,
            NamingStyle::CloudflareNs,
            NamingStyle::AzureDns,
            NamingStyle::DynStyle,
            NamingStyle::PnsNumbered { domain: "cloudns.net".into() },
            NamingStyle::Numbered { domain: "webhost1.br".into() },
        ] {
            for i in 0..40 {
                let (a, b) = style.host_pair(i);
                assert_ne!(a, b, "pair {i} of {style:?} collapsed");
            }
        }
    }
}
