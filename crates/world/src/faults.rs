use serde::{Deserialize, Serialize};

/// The Sommese et al. parent/child disagreement categories the paper
/// classifies inconsistent domains into (§IV-D, Fig 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InconsistencyKind {
    /// The parent's NS set is a strict subset of the child's.
    PSubsetC,
    /// The child's NS set is a strict subset of the parent's.
    CSubsetP,
    /// The sets intersect without either containing the other.
    PartialOverlap,
    /// Disjoint NS sets whose addresses nevertheless overlap (alias
    /// hostnames for the same servers).
    DisjointIpOverlap,
    /// Disjoint NS sets with disjoint addresses.
    DisjointNoIp,
}

/// A misconfiguration injected into a domain's April-2021 state.
///
/// Each variant corresponds to a phenomenon the paper measures; the
/// generator injects them at calibrated rates and the pipeline must
/// rediscover them from the outside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// The domain's parent zone itself is dead: every nameserver of the
    /// parent times out, so the probe gets no parent response at all
    /// (the 147k→115k funnel step).
    ParentUnreachable,
    /// The delegation was removed: the parent answers, but with
    /// NXDOMAIN/NODATA (the 115k→96k funnel step).
    RemovedFromParent,
    /// The parent still delegates, but no nameserver answers for the
    /// zone — a *fully* defective delegation / stale record.
    FullyStale,
    /// Some (not all) of the domain's nameservers do not answer for the
    /// zone — a *partially* defective delegation.
    PartialLame {
        /// How many of the NS targets are defective.
        lame_count: u8,
    },
    /// One NS name in the parent is a typo of the real one
    /// (`pns12cloudns.net` for `pns12.cloudns.net`) and does not resolve.
    TypoNs,
    /// An NS target's registered domain has expired and is open for
    /// registration — the domain-hijack scenario.
    DanglingRegistrable,
    /// The parent-only NS of an inconsistent delegation now points into a
    /// parking service (answers everything) whose registered domain is
    /// obtainable — the §IV-D inconsistency-only hijack scenario.
    ParkedDangling,
    /// Parent and child NS sets disagree in the given way.
    Inconsistent(InconsistencyKind),
    /// The child's servers return NS targets truncated to one label (the
    /// trailing-dot zone-file typo).
    RelativeLabelBug,
}

/// The set of faults assigned to one domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    classes: Vec<FaultClass>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// A plan with one fault.
    pub fn of(class: FaultClass) -> Self {
        FaultPlan { classes: vec![class] }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn and(mut self, class: FaultClass) -> Self {
        self.push(class);
        self
    }

    /// Adds a fault.
    pub fn push(&mut self, class: FaultClass) {
        if !self.classes.contains(&class) {
            self.classes.push(class);
        }
    }

    /// The faults.
    pub fn classes(&self) -> &[FaultClass] {
        &self.classes
    }

    /// Whether the plan contains `class`.
    pub fn has(&self, class: FaultClass) -> bool {
        self.classes.contains(&class)
    }

    /// Whether the plan is fault-free.
    pub fn is_clean(&self) -> bool {
        self.classes.is_empty()
    }

    /// The inconsistency kind, if any.
    pub fn inconsistency(&self) -> Option<InconsistencyKind> {
        self.classes.iter().find_map(|c| match c {
            FaultClass::Inconsistent(k) => Some(*k),
            _ => None,
        })
    }

    /// Whether the probe should receive an authoritative answer from at
    /// least one of the domain's nameservers.
    pub fn expect_some_authoritative_answer(&self) -> bool {
        !self.classes.iter().any(|c| {
            matches!(
                c,
                FaultClass::ParentUnreachable
                    | FaultClass::RemovedFromParent
                    | FaultClass::FullyStale
            )
        })
    }

    /// Whether the plan implies at least one defective (unresponsive or
    /// lame) nameserver.
    pub fn expect_defective_delegation(&self) -> bool {
        self.classes.iter().any(|c| {
            matches!(
                c,
                FaultClass::FullyStale
                    | FaultClass::PartialLame { .. }
                    | FaultClass::TypoNs
                    | FaultClass::DanglingRegistrable
            )
        })
    }
}

impl FromIterator<FaultClass> for FaultPlan {
    fn from_iter<T: IntoIterator<Item = FaultClass>>(iter: T) -> Self {
        let mut plan = FaultPlan::clean();
        for c in iter {
            plan.push(c);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_expects_answers() {
        let plan = FaultPlan::clean();
        assert!(plan.is_clean());
        assert!(plan.expect_some_authoritative_answer());
        assert!(!plan.expect_defective_delegation());
    }

    #[test]
    fn stale_plans_expect_silence() {
        for c in
            [FaultClass::ParentUnreachable, FaultClass::RemovedFromParent, FaultClass::FullyStale]
        {
            assert!(!FaultPlan::of(c).expect_some_authoritative_answer());
        }
    }

    #[test]
    fn partial_lame_is_defective_but_answerable() {
        let plan = FaultPlan::of(FaultClass::PartialLame { lame_count: 1 });
        assert!(plan.expect_some_authoritative_answer());
        assert!(plan.expect_defective_delegation());
    }

    #[test]
    fn deduplicates_and_queries() {
        let plan = FaultPlan::of(FaultClass::TypoNs)
            .and(FaultClass::TypoNs)
            .and(FaultClass::Inconsistent(InconsistencyKind::CSubsetP));
        assert_eq!(plan.classes().len(), 2);
        assert!(plan.has(FaultClass::TypoNs));
        assert_eq!(plan.inconsistency(), Some(InconsistencyKind::CSubsetP));
    }

    #[test]
    fn collects_from_iterator() {
        let plan: FaultPlan =
            [FaultClass::RelativeLabelBug, FaultClass::TypoNs].into_iter().collect();
        assert_eq!(plan.classes().len(), 2);
    }
}
