use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

/// ISO 3166-1 alpha-2 country code, lowercase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Builds a code from two ASCII letters.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not exactly two ASCII letters; codes come from the
    /// static country table, so anything else is a table bug.
    pub fn new(s: &str) -> Self {
        let b = s.as_bytes();
        assert!(b.len() == 2 && b.iter().all(u8::is_ascii_alphabetic), "bad country code `{s}`");
        CountryCode([b[0].to_ascii_lowercase(), b[1].to_ascii_lowercase()])
    }

    /// The two-letter code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("constructed from ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        let b = s.as_bytes();
        if b.len() == 2 && b.iter().all(u8::is_ascii_alphabetic) {
            Ok(CountryCode::new(s))
        } else {
            Err(format!("invalid country code `{s}`"))
        }
    }
}

/// UN M49 sub-regions (the grouping Tables II–III report coverage over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SubRegion {
    NorthernAfrica,
    EasternAfrica,
    MiddleAfrica,
    SouthernAfrica,
    WesternAfrica,
    Caribbean,
    CentralAmerica,
    SouthAmerica,
    NorthernAmerica,
    CentralAsia,
    EasternAsia,
    SouthEasternAsia,
    SouthernAsia,
    WesternAsia,
    EasternEurope,
    NorthernEurope,
    SouthernEurope,
    WesternEurope,
    AustraliaNewZealand,
    Melanesia,
    Micronesia,
    Polynesia,
}

impl SubRegion {
    /// All 22 sub-regions.
    pub fn all() -> &'static [SubRegion] {
        use SubRegion::*;
        &[
            NorthernAfrica,
            EasternAfrica,
            MiddleAfrica,
            SouthernAfrica,
            WesternAfrica,
            Caribbean,
            CentralAmerica,
            SouthAmerica,
            NorthernAmerica,
            CentralAsia,
            EasternAsia,
            SouthEasternAsia,
            SouthernAsia,
            WesternAsia,
            EasternEurope,
            NorthernEurope,
            SouthernEurope,
            WesternEurope,
            AustraliaNewZealand,
            Melanesia,
            Micronesia,
            Polynesia,
        ]
    }
}

impl fmt::Display for SubRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubRegion::NorthernAfrica => "Northern Africa",
            SubRegion::EasternAfrica => "Eastern Africa",
            SubRegion::MiddleAfrica => "Middle Africa",
            SubRegion::SouthernAfrica => "Southern Africa",
            SubRegion::WesternAfrica => "Western Africa",
            SubRegion::Caribbean => "Caribbean",
            SubRegion::CentralAmerica => "Central America",
            SubRegion::SouthAmerica => "South America",
            SubRegion::NorthernAmerica => "Northern America",
            SubRegion::CentralAsia => "Central Asia",
            SubRegion::EasternAsia => "Eastern Asia",
            SubRegion::SouthEasternAsia => "South-eastern Asia",
            SubRegion::SouthernAsia => "Southern Asia",
            SubRegion::WesternAsia => "Western Asia",
            SubRegion::EasternEurope => "Eastern Europe",
            SubRegion::NorthernEurope => "Northern Europe",
            SubRegion::SouthernEurope => "Southern Europe",
            SubRegion::WesternEurope => "Western Europe",
            SubRegion::AustraliaNewZealand => "Australia and New Zealand",
            SubRegion::Melanesia => "Melanesia",
            SubRegion::Micronesia => "Micronesia",
            SubRegion::Polynesia => "Polynesia",
        };
        f.write_str(s)
    }
}

/// How many government domains a country contributes, shaping the heavy
/// tail of Fig 4. `Top10` countries carry explicit paper-scale counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EgovTier {
    /// One of the ten countries with the most PDNS records; carries its
    /// Table I domain count at paper scale.
    Top10(u32),
    /// A developed e-government outside the top ten (~400–1500 domains).
    High,
    /// A mid-size e-government (~100–400 domains).
    Medium,
    /// A small e-government (~15–100 domains).
    Low,
    /// A minimal web presence (fewer than 15 domains, sometimes none
    /// responsive — the Bolivia/Bulgaria/Burkina Faso/UAE cases).
    Minimal,
}

/// One UN member country in the synthetic world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Country {
    /// ISO alpha-2 code.
    pub code: CountryCode,
    /// English short name.
    pub name: &'static str,
    /// UN sub-region.
    pub sub_region: SubRegion,
    /// Size tier.
    pub tier: EgovTier,
}

impl Country {
    /// The country's ccTLD as a domain name (`zz` for code `zz`).
    pub fn cctld(&self) -> DomainName {
        self.code.as_str().parse().expect("two letters form a valid label")
    }

    /// Whether this country is one of the ten with the most records
    /// (treated as its own sub-region group in Tables II–III).
    pub fn is_top10(&self) -> bool {
        matches!(self.tier, EgovTier::Top10(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_normalizes_case() {
        assert_eq!(CountryCode::new("BR").as_str(), "br");
        assert_eq!("Cn".parse::<CountryCode>().unwrap().as_str(), "cn");
        assert!("B1".parse::<CountryCode>().is_err());
        assert!("BRA".parse::<CountryCode>().is_err());
    }

    #[test]
    fn twenty_two_sub_regions() {
        assert_eq!(SubRegion::all().len(), 22);
        let mut set = std::collections::BTreeSet::new();
        for s in SubRegion::all() {
            set.insert(*s);
        }
        assert_eq!(set.len(), 22);
    }

    #[test]
    fn country_helpers() {
        let c = Country {
            code: CountryCode::new("br"),
            name: "Brazil",
            sub_region: SubRegion::SouthAmerica,
            tier: EgovTier::Top10(7_271),
        };
        assert_eq!(c.cctld().to_string(), "br");
        assert!(c.is_top10());
    }
}
