use std::collections::BTreeMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::calibration::delegation as cal;

/// A registration price in US dollars.
pub type PriceUsd = f64;

/// The registrar storefront — the stand-in for the paper's GoDaddy
/// availability-and-price checks on dangling nameserver domains.
///
/// Domains explicitly marked available carry a price; everything else is
/// considered registered.
///
/// ```
/// use govdns_world::Registrar;
/// let mut r = Registrar::new();
/// r.mark_available("deadprov1.net".parse()?, 11.99);
/// assert_eq!(r.price_of(&"deadprov1.net".parse()?), Some(11.99));
/// assert!(r.price_of(&"cloudflare.com".parse()?).is_none());
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Registrar {
    available: BTreeMap<DomainName, PriceUsd>,
}

impl Registrar {
    /// Creates a registrar where every domain is registered.
    pub fn new() -> Self {
        Registrar::default()
    }

    /// Marks a registered domain as available at `price`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive price.
    pub fn mark_available(&mut self, domain: DomainName, price: PriceUsd) {
        assert!(price > 0.0, "price {price} must be positive");
        self.available.insert(domain, price);
    }

    /// Whether `domain` can be registered right now.
    pub fn is_available(&self, domain: &DomainName) -> bool {
        self.available.contains_key(domain)
    }

    /// The registration price, if the domain is available.
    pub fn price_of(&self, domain: &DomainName) -> Option<PriceUsd> {
        self.available.get(domain).copied()
    }

    /// All available domains with their prices.
    pub fn iter_available(&self) -> impl Iterator<Item = (&DomainName, PriceUsd)> {
        self.available.iter().map(|(d, &p)| (d, p))
    }

    /// Number of available domains.
    pub fn available_count(&self) -> usize {
        self.available.len()
    }
}

/// Samples a registration price from the heavy-tailed distribution the
/// paper reports (Fig 12): min 0.01, median ≈ 11.99, occasional premium
/// names up to 20,000 USD.
pub fn sample_price<R: Rng>(rng: &mut R) -> PriceUsd {
    let roll: f64 = rng.gen();
    let price = if roll < 0.04 {
        // Clearance-bin names.
        rng.gen_range(cal::COST_MIN_USD..1.0)
    } else if roll < 0.88 {
        // The bulk around the 11.99 median: lognormal-ish around ln(12).
        let z: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
        (cal::COST_MEDIAN_USD * (z * 0.9).exp()).clamp(1.0, 99.0)
    } else if roll < 0.985 {
        // Aftermarket names.
        rng.gen_range(100.0..2_000.0)
    } else {
        // Premium names up to the observed 20k maximum.
        rng.gen_range(2_000.0..=cal::COST_MAX_USD)
    };
    (price * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn availability_and_prices() {
        let mut r = Registrar::new();
        r.mark_available("deadprov1.net".parse().unwrap(), 11.99);
        r.mark_available("pns12cloudns.net".parse().unwrap(), 8.5);
        assert!(r.is_available(&"deadprov1.net".parse().unwrap()));
        assert!(!r.is_available(&"gov.br".parse().unwrap()));
        assert_eq!(r.available_count(), 2);
        assert_eq!(r.iter_available().count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_free_domains() {
        Registrar::new().mark_available("x.net".parse().unwrap(), 0.0);
    }

    #[test]
    fn price_distribution_matches_figure_12() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut prices: Vec<f64> = (0..4000).map(|_| sample_price(&mut rng)).collect();
        prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = prices[prices.len() / 2];
        assert!((6.0..25.0).contains(&median), "median {median}");
        assert!(prices[0] >= cal::COST_MIN_USD);
        assert!(*prices.last().unwrap() <= cal::COST_MAX_USD);
        assert!(*prices.last().unwrap() > 2_000.0, "tail should reach premium range");
        let cheap = prices.iter().filter(|p| **p < 1.0).count();
        assert!(cheap > 0, "clearance bin should exist");
    }
}
