use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, SimDate};

use crate::country::CountryCode;
use crate::deployment::DeploymentStyle;

/// One stretch of a domain's deployment history during which its NS set
/// was stable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epoch {
    /// When this deployment was in effect.
    pub span: DateRange,
    /// Who operated the nameservers.
    pub style: DeploymentStyle,
    /// The NS RRset during the epoch.
    pub ns_hosts: Vec<DomainName>,
}

impl Epoch {
    /// Whether the domain ran on a single nameserver during this epoch.
    pub fn single_ns(&self) -> bool {
        self.ns_hosts.len() == 1
    }
}

/// A domain's full deployment history: chronological, non-overlapping
/// epochs from creation to removal (or to the present).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainTimeline {
    /// The domain.
    pub name: DomainName,
    /// The government operating it.
    pub country: CountryCode,
    /// Deployment epochs, chronological.
    pub epochs: Vec<Epoch>,
}

impl DomainTimeline {
    /// Creates a timeline with no epochs yet.
    pub fn new(name: DomainName, country: CountryCode) -> Self {
        DomainTimeline { name, country, epochs: Vec::new() }
    }

    /// Appends an epoch.
    ///
    /// # Panics
    ///
    /// Panics if the epoch starts before the previous one ends — the
    /// generator must produce chronological histories.
    pub fn push(&mut self, epoch: Epoch) {
        if let Some(last) = self.epochs.last() {
            assert!(
                epoch.span.start > last.span.end,
                "epoch starting {} overlaps previous ending {} for {}",
                epoch.span.start,
                last.span.end,
                self.name
            );
        }
        self.epochs.push(epoch);
    }

    /// Date the domain first appeared, if it has any history.
    pub fn created(&self) -> Option<SimDate> {
        self.epochs.first().map(|e| e.span.start)
    }

    /// Date the domain's last epoch ends.
    pub fn ends(&self) -> Option<SimDate> {
        self.epochs.last().map(|e| e.span.end)
    }

    /// The epoch in effect on `date`, if any.
    pub fn at(&self, date: SimDate) -> Option<&Epoch> {
        self.epochs.iter().find(|e| e.span.contains(date))
    }

    /// Whether any epoch overlaps `window`.
    pub fn active_in(&self, window: &DateRange) -> bool {
        self.epochs.iter().any(|e| e.span.overlaps(window))
    }

    /// Whether the domain ran on a single nameserver for the majority of
    /// its active days in `window` — the paper's per-year `NS_daily` mode
    /// reduced to the generator's epoch representation.
    pub fn mostly_single_ns_in(&self, window: &DateRange) -> bool {
        let mut single = 0i64;
        let mut multi = 0i64;
        for e in &self.epochs {
            if let Some(overlap) = e.span.intersect(window) {
                if e.single_ns() {
                    single += overlap.len_days();
                } else {
                    multi += overlap.len_days();
                }
            }
        }
        single > 0 && single >= multi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, dd: u32) -> SimDate {
        SimDate::from_ymd(y, m, dd)
    }

    fn epoch(from: SimDate, to: SimDate, hosts: &[&str]) -> Epoch {
        Epoch {
            span: DateRange::new(from, to),
            style: DeploymentStyle::Private,
            ns_hosts: hosts.iter().map(|h| h.parse().unwrap()).collect(),
        }
    }

    fn timeline() -> DomainTimeline {
        let mut t = DomainTimeline::new("a.gov.zz".parse().unwrap(), CountryCode::new("zz"));
        t.push(epoch(d(2012, 3, 1), d(2016, 5, 1), &["ns1.a.gov.zz"]));
        t.push(epoch(d(2016, 5, 2), d(2021, 4, 1), &["ns1.a.gov.zz", "ns2.a.gov.zz"]));
        t
    }

    #[test]
    fn accessors() {
        let t = timeline();
        assert_eq!(t.created(), Some(d(2012, 3, 1)));
        assert_eq!(t.ends(), Some(d(2021, 4, 1)));
        assert!(t.at(d(2014, 1, 1)).unwrap().single_ns());
        assert!(!t.at(d(2018, 1, 1)).unwrap().single_ns());
        assert!(t.at(d(2011, 1, 1)).is_none());
    }

    #[test]
    fn activity_windows() {
        let t = timeline();
        assert!(t.active_in(&DateRange::year(2013)));
        assert!(!t.active_in(&DateRange::year(2011)));
        assert!(t.active_in(&DateRange::year(2021)));
    }

    #[test]
    fn single_ns_majority_per_year() {
        let t = timeline();
        assert!(t.mostly_single_ns_in(&DateRange::year(2014)));
        assert!(!t.mostly_single_ns_in(&DateRange::year(2018)));
        // 2016 splits May 1 / May 2: multi holds the majority of days.
        assert!(!t.mostly_single_ns_in(&DateRange::year(2016)));
        assert!(!t.mostly_single_ns_in(&DateRange::year(2011)));
    }

    #[test]
    #[should_panic(expected = "overlaps previous")]
    fn rejects_overlapping_epochs() {
        let mut t = DomainTimeline::new("a.gov.zz".parse().unwrap(), CountryCode::new("zz"));
        t.push(epoch(d(2012, 1, 1), d(2014, 1, 1), &["ns1.a.gov.zz"]));
        t.push(epoch(d(2013, 1, 1), d(2015, 1, 1), &["ns2.a.gov.zz"]));
    }
}
