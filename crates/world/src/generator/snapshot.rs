//! Phase F of world generation: inject the calibrated misconfigurations
//! and materialize the April-2021 snapshot as zones and servers.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use govdns_model::{DomainName, Soa, Zone};
use govdns_pdns::PdnsDb;
use govdns_simnet::{AuthoritativeServer, ServerBehavior, SimNetwork};

use crate::calibration::{self, DiversityTarget};
use crate::faults::{FaultClass, FaultPlan, InconsistencyKind};
use crate::registrar::{sample_price, Registrar};
use crate::world::{DomainTruth, World, WorldTruth};

use super::{materialize_timeline, Build, Category};

/// Per-domain snapshot outcome.
#[derive(Debug, Clone, Default)]
struct PlanOut {
    faults: FaultPlan,
    /// NS targets in the parent zone (empty: removed).
    p: Vec<DomainName>,
    /// NS targets in the child zone (empty: zone gone).
    c: Vec<DomainName>,
    /// Hosts that must not serve this zone (lame for it).
    lame: HashSet<DomainName>,
    alive: bool,
}

pub(super) fn materialize(build: Build, pdns: PdnsDb, profiles: &[DiversityTarget]) -> World {
    let mut m = Materializer {
        rng: SmallRng::seed_from_u64(build.cfg.seed ^ 0x55),
        outs: vec![PlanOut::default(); build.domains.len()],
        host_ips: HashMap::new(),
        dead_hosts: HashSet::new(),
        relative_bug_ips: HashSet::new(),
        parking_ip: Ipv4Addr::UNSPECIFIED,
        registrar: Registrar::new(),
        central_hosts: Vec::new(),
        b: build,
        profiles: profiles.to_vec(),
    };
    m.allocate_provider_host_ips();
    m.allocate_country_infra();
    m.allocate_domain_host_ips();
    m.plan_faults();
    m.inject_dangling_clusters();
    m.inject_parked_dangling();
    m.build_world(pdns)
}

struct Materializer {
    b: Build,
    rng: SmallRng,
    profiles: Vec<DiversityTarget>,
    outs: Vec<PlanOut>,
    host_ips: HashMap<DomainName, Ipv4Addr>,
    /// Hosts that resolve but have no server listening (stale).
    dead_hosts: HashSet<DomainName>,
    /// Addresses whose servers exhibit the relative-label bug.
    relative_bug_ips: HashSet<Ipv4Addr>,
    parking_ip: Ipv4Addr,
    registrar: Registrar,
    /// Per country: the shared central pairs `ns1..ns6.d_gov`.
    central_hosts: Vec<Vec<DomainName>>,
}

impl Materializer {
    /// Pins every provider pool host to its pre-allocated address
    /// (first occurrence wins, so shared hostnames stay consistent).
    fn allocate_provider_host_ips(&mut self) {
        for provider in self.b.catalog.iter() {
            let ips = &self.b.provider_pair_ips[provider.id];
            for (i, (a, b)) in provider.pool.iter().enumerate() {
                let (ip_a, ip_b) = ips[i];
                self.host_ips.entry(a.clone()).or_insert(ip_a);
                self.host_ips.entry(b.clone()).or_insert(ip_b);
            }
        }
    }

    /// Root servers, gTLD servers, ccTLD servers, central government
    /// pairs, and the parking service.
    fn allocate_country_infra(&mut self) {
        // The parking service lives in its own AS.
        let parking_asn = self.b.plan.allocate_asn();
        self.parking_ip = self.b.plan.fresh_host(parking_asn);
        for k in 1..=2 {
            let host: DomainName =
                format!("ns{k}.parkingdns.com").parse().expect("static host parses");
            self.host_ips.insert(host, self.parking_ip);
        }

        for ci in 0..self.b.countries.len() {
            let code = self.b.countries[ci].code;
            let cc = code.as_str().to_owned();
            let (gov_asn, isp_asn) = self.b.country_asns[ci];
            // NIC servers for the ccTLD.
            for k in 1..=2 {
                let host: DomainName = format!("ns{k}.nic.{cc}").parse().expect("nic host parses");
                let ip = self.b.plan.fresh_host(isp_asn);
                self.host_ips.insert(host, ip);
            }
            // Central pairs under d_gov, placed per the country profile.
            let d_gov = self.b.d_gov[&code].clone();
            let profile = self.profiles[ci];
            let mut hosts = Vec::new();
            for pair in 0..3 {
                // Pair 0 serves the national apex itself; apex zones are
                // conspicuously well-run (the paper finds *more* /24
                // diversity at the second level, not less), so place it
                // across prefixes regardless of the country's habits.
                let policy = if pair == 0 {
                    if self.rng.gen_bool(0.35) {
                        crate::deployment::DiversityPolicy::MultiAsn
                    } else {
                        crate::deployment::DiversityPolicy::MultiSlash24
                    }
                } else {
                    sample_policy(&mut self.rng, profile)
                };
                let (ip1, ip2) = self.b.plan.pair_ips(gov_asn, isp_asn, policy);
                let h1: DomainName =
                    format!("ns{}.{d_gov}", pair * 2 + 1).parse().expect("central host parses");
                let h2: DomainName =
                    format!("ns{}.{d_gov}", pair * 2 + 2).parse().expect("central host parses");
                self.host_ips.insert(h1.clone(), ip1);
                self.host_ips.insert(h2.clone(), ip2);
                hosts.push(h1);
                hosts.push(h2);
            }
            self.central_hosts.push(hosts);
        }
    }

    /// Assigns addresses to private per-domain hosts.
    fn allocate_domain_host_ips(&mut self) {
        for di in 0..self.b.domains.len() {
            let (ci, hosts) = {
                let rec = &self.b.domains[di];
                (rec.country_idx, rec.final_hosts().to_vec())
            };
            let unassigned: Vec<DomainName> =
                hosts.into_iter().filter(|h| !self.host_ips.contains_key(h)).collect();
            if unassigned.is_empty() {
                continue;
            }
            let (gov_asn, isp_asn) = self.b.country_asns[ci];
            let profile = self.profiles[ci];
            let policy = sample_policy(&mut self.rng, profile);
            if unassigned.len() >= 2 {
                let (ip1, ip2) = self.b.plan.pair_ips(gov_asn, isp_asn, policy);
                self.host_ips.insert(unassigned[0].clone(), ip1);
                self.host_ips.insert(unassigned[1].clone(), ip2);
                for extra in &unassigned[2..] {
                    // Extra hosts follow the pair's placement: a shared-
                    // address deployment stays shared.
                    let ip = if policy == crate::deployment::DiversityPolicy::SameIp {
                        ip1
                    } else {
                        self.b.plan.fresh_host(gov_asn)
                    };
                    self.host_ips.insert(extra.clone(), ip);
                }
            } else {
                let ip = self.b.plan.fresh_host(gov_asn);
                self.host_ips.insert(unassigned[0].clone(), ip);
            }
        }
    }

    /// Draws the fault plan for every domain and computes P/C.
    fn plan_faults(&mut self) {
        use calibration::consistency::breakdown as cb;
        for di in 0..self.b.domains.len() {
            let (category, single, hosts, name) = {
                let rec = &self.b.domains[di];
                (rec.category, rec.single, rec.final_hosts().to_vec(), rec.name.clone())
            };
            let mut out = PlanOut { alive: true, ..PlanOut::default() };
            match category {
                Category::Historical => {
                    out.alive = false;
                    self.outs[di] = out;
                    continue;
                }
                Category::Removed => {
                    out.alive = false;
                    out.faults.push(FaultClass::RemovedFromParent);
                    self.outs[di] = out;
                    continue;
                }
                Category::DeadChild => {
                    out.p = hosts.clone();
                    out.faults.push(FaultClass::ParentUnreachable);
                    self.kill_hosts(&hosts, &name);
                    self.outs[di] = out;
                    continue;
                }
                Category::DeadIntermediate => {
                    out.p = hosts.clone();
                    out.faults.push(FaultClass::FullyStale);
                    self.kill_hosts(&hosts, &name);
                    self.outs[di] = out;
                    continue;
                }
                Category::DGov | Category::Intermediate | Category::Responsive => {}
            }

            out.p = hosts.clone();
            out.c = hosts.clone();

            // Fully stale: the dominant fate of single-NS domains.
            // Slightly under the published 60.1% because typo'd and
            // dangling injections add further stale singles downstream.
            let stale_p = if single { calibration::D1NS_STALE_RATE - 0.02 } else { 0.035 };
            if self.rng.gen_bool(stale_p) && category == Category::Responsive {
                out.faults.push(FaultClass::FullyStale);
                out.c.clear();
                self.kill_hosts(&hosts, &name);
                self.outs[di] = out;
                continue;
            }

            // Partial lame.
            if hosts.len() >= 2 && self.rng.gen_bool(0.19) {
                let lame_count = if hosts.len() >= 3 && self.rng.gen_bool(0.3) { 2 } else { 1 };
                let mut victims = hosts.clone();
                victims.shuffle(&mut self.rng);
                for v in victims.into_iter().take(lame_count) {
                    out.lame.insert(v);
                }
                out.faults.push(FaultClass::PartialLame { lame_count: lame_count as u8 });
            }

            // Typo'd nameserver name: the registered-domain-merging
            // zone-file slip (`pns12cloudns.net`).
            if hosts.len() >= 2 && self.rng.gen_bool(0.005) {
                if let Some(typo) = typo_of(&hosts[0]) {
                    out.p[0] = typo.clone();
                    out.c[0] = typo.clone();
                    out.faults.push(FaultClass::TypoNs);
                    // The merged name is a *new registered domain* only
                    // when the merge happened at the registered-domain
                    // boundary (pns12.cloudns.net → pns12cloudns.net).
                    // Deeper merges (ada.ns.cloudflare.com →
                    // adans.cloudflare.com) stay inside a domain someone
                    // already owns — never mark those available.
                    if typo.level() == 2 && self.rng.gen_bool(0.3) {
                        let reg = typo.suffix(2);
                        if !self.registrar.is_available(&reg) {
                            let price = sample_price(&mut self.rng);
                            self.registrar.mark_available(reg, price);
                        }
                    }
                }
            }

            // Parent/child inconsistency. Centrally hosted domains share
            // servers with their parent zone, so a probe can never observe
            // a parent-side difference there — skip them and rescale the
            // rest so the aggregate rate stays calibrated.
            let code = self.b.countries[self.b.domains[di].country_idx].code;
            let d_gov = self.b.d_gov[&code].clone();
            let central_hosted = !hosts.is_empty()
                && hosts.iter().all(|h| h.is_within(&d_gov) && !h.is_subdomain_of(&name));
            let second_level = matches!(category, Category::DGov);
            let scale = if central_hosted {
                0.0
            } else if second_level {
                (1.0 - calibration::consistency::EQUAL_RATE_SECOND_LEVEL)
                    / (1.0 - calibration::consistency::EQUAL_RATE)
            } else {
                1.18 // deeper levels disagree more; also offsets the
                     // centrally-hosted exclusion above
            };
            let roll: f64 = self.rng.gen();
            let mut acc = 0.0;
            let mut kind = None;
            for (k, p) in [
                (InconsistencyKind::PSubsetC, cb::P_SUBSET_C),
                (InconsistencyKind::CSubsetP, cb::C_SUBSET_P),
                (InconsistencyKind::PartialOverlap, cb::PARTIAL_OVERLAP),
                (InconsistencyKind::DisjointIpOverlap, cb::DISJOINT_IP_OVERLAP),
                (InconsistencyKind::DisjointNoIp, cb::DISJOINT_NO_IP),
            ] {
                acc += p * scale;
                if roll < acc {
                    kind = Some(k);
                    break;
                }
            }
            if let Some(kind) = kind {
                if self.apply_inconsistency(di, kind, &mut out, &name) {
                    out.faults.push(FaultClass::Inconsistent(kind));
                }
            }

            // Relative-label truncation: private, multi-NS, otherwise
            // clean *leaf* deployments only — it needs dedicated servers,
            // and putting it on a d_gov or intermediate zone would mangle
            // every referral beneath it.
            if out.faults.is_clean()
                && !single
                && category == Category::Responsive
                && self.b.domains[di].final_style().is_private()
                && self.rng.gen_bool(0.012)
            {
                let dedicated = hosts.iter().all(|h| h.is_within(&name));
                if dedicated {
                    out.faults.push(FaultClass::RelativeLabelBug);
                    for h in &hosts {
                        if let Some(ip) = self.host_ips.get(h) {
                            self.relative_bug_ips.insert(*ip);
                        }
                    }
                }
            }

            self.outs[di] = out;
        }
    }

    /// Applies one inconsistency kind, mutating P/C. Returns false if the
    /// kind is not applicable to this deployment.
    fn apply_inconsistency(
        &mut self,
        di: usize,
        kind: InconsistencyKind,
        out: &mut PlanOut,
        name: &DomainName,
    ) -> bool {
        match kind {
            InconsistencyKind::PSubsetC => {
                // The child grew a nameserver the parent never learned of.
                let extra = self.extra_host(di, name, 1);
                out.c.push(extra);
                true
            }
            InconsistencyKind::CSubsetP => {
                // The parent still lists a nameserver the child dropped.
                let extra = self.extra_host(di, name, 2);
                // In 60% of cases the leftover is also dead *for this
                // zone* — this drives the "40.9% of P≠C also partially
                // defective" statistic. The lame set is per-domain:
                // shared provider hosts keep serving their other zones.
                if self.rng.gen_bool(0.6) {
                    out.lame.insert(extra.clone());
                }
                out.p.push(extra);
                true
            }
            InconsistencyKind::PartialOverlap => {
                if out.p.len() < 2 {
                    return false;
                }
                let extra_p = self.extra_host(di, name, 3);
                let extra_c = self.extra_host(di, name, 4);
                if extra_p == extra_c {
                    return false;
                }
                let last = out.p.len() - 1;
                out.p[last] = extra_p;
                out.c[last] = extra_c;
                true
            }
            InconsistencyKind::DisjointIpOverlap => {
                // The parent carries alias names gluing to the same
                // addresses the child's real nameservers use.
                let mut aliases = Vec::new();
                for (k, host) in out.c.iter().enumerate() {
                    let Some(&ip) = self.host_ips.get(host) else { return false };
                    let alias: DomainName =
                        format!("dns{}.{name}", k + 1).parse().expect("alias host parses");
                    self.host_ips.insert(alias.clone(), ip);
                    aliases.push(alias);
                }
                if aliases.is_empty() {
                    return false;
                }
                out.p = aliases;
                true
            }
            InconsistencyKind::DisjointNoIp => {
                // The parent still points at the previous provider, which
                // keeps serving the zone.
                let prev = self.previous_provider_hosts(di);
                if prev.is_empty() || prev.iter().any(|h| out.c.contains(h)) {
                    return false;
                }
                out.p = prev;
                true
            }
        }
    }

    /// A plausible additional host for this domain's deployment: another
    /// pool host for provider-hosted domains, another `ns<k>` name for
    /// private ones.
    fn extra_host(&mut self, di: usize, name: &DomainName, salt: usize) -> DomainName {
        let style = self.b.domains[di].final_style();
        match style.providers().first() {
            Some(&pid) => {
                let provider = self.b.catalog.get(pid);
                let idx = (self.rng.gen_range(0..provider.pool.len()) + salt) % provider.pool.len();
                provider.pool.pair(idx).0.clone()
            }
            None => {
                let host: DomainName =
                    format!("ns{}.{name}", 7 + salt).parse().expect("extra host parses");
                if !self.host_ips.contains_key(&host) {
                    let (gov_asn, _) = self.b.country_asns[self.b.domains[di].country_idx];
                    let ip = self.b.plan.fresh_host(gov_asn);
                    self.host_ips.insert(host.clone(), ip);
                }
                host
            }
        }
    }

    /// Hosts of a different provider, as if the domain had migrated away
    /// and the parent was never updated.
    fn previous_provider_hosts(&mut self, di: usize) -> Vec<DomainName> {
        let ci = self.b.domains[di].country_idx;
        let code = self.b.countries[ci].code;
        let locals: Vec<_> = self.b.catalog.locals_of(code).map(|p| p.id).collect();
        if locals.is_empty() {
            return Vec::new();
        }
        let pid = locals[self.rng.gen_range(0..locals.len())];
        let provider = self.b.catalog.get(pid);
        let pair = provider.pool.pair(self.rng.gen_range(0..provider.pool.len()));
        vec![pair.0.clone(), pair.1.clone()]
    }

    /// Makes the domain's *dedicated* hosts dead (resolvable via glue,
    /// but timing out). Shared hosts — provider farms or a country's
    /// central pairs — stay up for their other zones; they simply do not
    /// serve this one, which is just as defective from the outside.
    fn kill_hosts(&mut self, hosts: &[DomainName], owner: &DomainName) {
        for h in hosts {
            if h.is_within(owner) && self.host_ips.contains_key(h) {
                self.dead_hosts.insert(h.clone());
            }
        }
    }

    /// The dangling-NS clusters of §IV-C: expired provider domains still
    /// referenced by government delegations, registrable at retail prices.
    fn inject_dangling_clusters(&mut self) {
        let scale = self.b.cfg.scale;
        let n_countries = ((f64::from(calibration::delegation::AFFECTED_COUNTRIES)
            * scale.powf(0.6))
        .round() as usize)
            .max(1);
        let n_dns = ((f64::from(calibration::delegation::AVAILABLE_NS_DOMAINS) * scale).round()
            as usize)
            .max(2);
        // Countries weighted toward those with the most responsive
        // domains (the paper names Turkey, Brazil, Mexico).
        let mut by_count: BTreeMap<usize, usize> = BTreeMap::new();
        for (di, rec) in self.b.domains.iter().enumerate() {
            if rec.category == Category::Responsive && self.outs[di].alive {
                *by_count.entry(rec.country_idx).or_default() += 1;
            }
        }
        let mut ranked: Vec<(usize, usize)> = by_count.iter().map(|(&ci, &n)| (ci, n)).collect();
        ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let chosen: Vec<usize> = ranked.iter().take(n_countries).map(|&(ci, _)| ci).collect();
        if chosen.is_empty() {
            return;
        }

        // Victims per country: responsive, not already fully stale.
        let mut victims_by_country: HashMap<usize, Vec<usize>> = HashMap::new();
        for (di, rec) in self.b.domains.iter().enumerate() {
            if rec.category == Category::Responsive
                && !self.outs[di].c.is_empty()
                && chosen.contains(&rec.country_idx)
            {
                victims_by_country.entry(rec.country_idx).or_default().push(di);
            }
        }

        let mut cross_country_budget = 2usize;
        for k in 0..n_dns {
            let ci = chosen[k % chosen.len()];
            let dead_domain: DomainName = format!(
                "{}dns{}.{}",
                super::AGENCY_WORDS[self.rng.gen_range(0..super::AGENCY_WORDS.len())],
                k,
                if k % 2 == 0 { "com" } else { "net" }
            )
            .parse()
            .expect("dead provider domain parses");
            let price = sample_price(&mut self.rng);
            self.registrar.mark_available(dead_domain.clone(), price);

            // 1–3 affected domains, usually in one country; two d_ns span
            // two countries (as observed).
            let mut victim_countries = vec![ci];
            if cross_country_budget > 0 && self.rng.gen_bool(0.08) && chosen.len() > 1 {
                victim_countries.push(chosen[(k + 1) % chosen.len()]);
                cross_country_budget -= 1;
            }
            let n_victims = 1 + self.rng.gen_range(0..3).min(1); // avg ≈ 1.4
            for (vi, &vc) in victim_countries.iter().enumerate() {
                let Some(pool) = victims_by_country.get_mut(&vc) else { continue };
                for _ in 0..n_victims.max(vi) {
                    let Some(di) = pool.pop() else { break };
                    self.attach_dangling(di, &dead_domain);
                }
            }
        }
    }

    fn attach_dangling(&mut self, di: usize, dead_domain: &DomainName) {
        let h1: DomainName = format!("ns1.{dead_domain}").parse().expect("dangling host parses");
        let h2: DomainName = format!("ns2.{dead_domain}").parse().expect("dangling host parses");
        let fully = self.rng.gen_bool(0.56);
        let out = &mut self.outs[di];
        if fully {
            // The whole delegation points into the dead provider.
            out.p = vec![h1, h2];
            out.c.clear();
            out.faults.push(FaultClass::DanglingRegistrable);
            out.faults.push(FaultClass::FullyStale);
        } else {
            if out.p.is_empty() {
                return;
            }
            out.p[0] = h1.clone();
            if !out.c.is_empty() {
                out.c[0] = h1;
            }
            out.faults.push(FaultClass::DanglingRegistrable);
        }
    }

    /// The §IV-D inconsistency-only hijack surface: parent-only NS names
    /// under expired domains that now answer from a parking service.
    fn inject_parked_dangling(&mut self) {
        let scale = self.b.cfg.scale;
        let n_dns = ((f64::from(calibration::consistency::AVAILABLE_NS_DOMAINS) * scale.powf(0.6))
            .round() as usize)
            .max(1);
        let n_countries = ((f64::from(calibration::consistency::AFFECTED_COUNTRIES)
            * scale.powf(0.6))
        .round() as usize)
            .max(1);

        // Candidates: responsive, currently consistent, multi-NS, and not
        // centrally hosted — a central server answers authoritatively for
        // the child at the parent step, masking parent-only records, so a
        // parked host injected there would be unobservable.
        let mut candidates: Vec<usize> = (0..self.b.domains.len())
            .filter(|&di| {
                let rec = &self.b.domains[di];
                if rec.category != Category::Responsive
                    || !self.outs[di].alive
                    || self.outs[di].c.is_empty()
                    || !self.outs[di].faults.is_clean()
                    || self.outs[di].p.len() < 2
                {
                    return false;
                }
                let code = self.b.countries[rec.country_idx].code;
                let d_gov = &self.b.d_gov[&code];
                let central_hosted = self.outs[di]
                    .p
                    .iter()
                    .all(|h| h.is_within(d_gov) && !h.is_subdomain_of(&rec.name));
                !central_hosted
            })
            .collect();
        candidates.shuffle(&mut self.rng);
        let mut countries_used: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        for k in 0..n_dns {
            let parked: DomainName =
                format!("park{}dns.com", k + 1).parse().expect("parked domain parses");
            let price = (calibration::consistency::COST_MIN_USD
                + self.rng.gen_range(0.0..4_700.0) * 1.0)
                .max(calibration::consistency::COST_MIN_USD);
            self.registrar.mark_available(parked.clone(), (price * 100.0).round() / 100.0);
            let host: DomainName = format!("ns1.{parked}").parse().expect("parked host parses");
            self.host_ips.insert(host.clone(), self.parking_ip);

            // The first parked name is the district-government cluster;
            // the rest get ~2 victims each.
            let victims =
                if k == 0 { ((12.0 * scale.powf(0.6)).round() as usize).clamp(1, 12) } else { 2 };
            for _ in 0..victims {
                let Some(&di) = candidates.get(cursor) else { return };
                cursor += 1;
                let ci = self.b.domains[di].country_idx;
                if !countries_used.contains(&ci) {
                    if countries_used.len() >= n_countries {
                        continue;
                    }
                    countries_used.push(ci);
                }
                let out = &mut self.outs[di];
                out.p.push(host.clone());
                out.faults.push(FaultClass::ParkedDangling);
                out.faults.push(FaultClass::Inconsistent(InconsistencyKind::CSubsetP));
            }
        }
    }

    /// Builds every zone and server, wires the network, and assembles the
    /// final [`World`].
    fn build_world(mut self, pdns: PdnsDb) -> World {
        let collection = self.b.collection;
        let mut zones: BTreeMap<DomainName, Zone> = BTreeMap::new();

        // Root zone and root servers.
        let root_asn = self.b.plan.allocate_asn();
        let root_hosts: Vec<(DomainName, Ipv4Addr)> = (0..2)
            .map(|k| {
                let host: DomainName =
                    format!("ns{}.rootns.net", k + 1).parse().expect("root host parses");
                let ip = self.b.plan.fresh_host(root_asn);
                self.host_ips.insert(host.clone(), ip);
                (host, ip)
            })
            .collect();
        let mut root_zone = Zone::new(DomainName::root());
        for (host, ip) in &root_hosts {
            root_zone.add_ns(DomainName::root(), host.clone());
            root_zone.add_a(host.clone(), *ip);
        }

        // gTLD zones.
        let gtld_asn = self.b.plan.allocate_asn();
        let gtlds = ["com", "net", "org", "info"];
        let mut gtld_ips: HashMap<&str, Ipv4Addr> = HashMap::new();
        for tld in gtlds {
            let origin: DomainName = tld.parse().expect("gtld parses");
            let host: DomainName = format!("ns1.nic.{tld}").parse().expect("gtld host parses");
            let ip = self.b.plan.fresh_host(gtld_asn);
            self.host_ips.insert(host.clone(), ip);
            gtld_ips.insert(tld, ip);
            root_zone.add_ns(origin.clone(), host.clone());
            root_zone.add_glue(host.clone(), ip);
            let mut z = Zone::new(origin.clone());
            z.add_ns(origin.clone(), host.clone());
            z.add_a(host, ip);
            z.set_soa(Soa::new(
                format!("ns1.nic.{tld}").parse().expect("host parses"),
                format!("hostmaster.nic.{tld}").parse().expect("rname parses"),
            ));
            zones.insert(origin, z);
        }

        // Host A records land in their TLD zone when that TLD is a gTLD
        // (provider farms, parking hosts); ccTLD hosts are added below.
        let host_entries: Vec<(DomainName, Ipv4Addr)> =
            self.host_ips.iter().map(|(h, &ip)| (h.clone(), ip)).collect();
        for (host, ip) in &host_entries {
            let tld = host.suffix(1).to_string();
            if let Some(zone) = zones.get_mut(&host.suffix(1)) {
                let _ = tld;
                zone.add_a(host.clone(), *ip);
            }
        }

        // The squatted portal domain points at the parking service.
        if let Some(squatted) = self.b.squatted_portal.clone() {
            if let Some(zone) = zones.get_mut(&squatted.suffix(1)) {
                zone.add_a(squatted.clone(), self.parking_ip);
                if let Ok(www) = squatted.prepend("www") {
                    zone.add_a(www, self.parking_ip);
                }
            }
        }

        // ccTLD zones.
        for ci in 0..self.b.countries.len() {
            let code = self.b.countries[ci].code;
            let cc = code.as_str().to_owned();
            let origin: DomainName = cc.parse().expect("cctld parses");
            let mut z = Zone::new(origin.clone());
            for k in 1..=2 {
                let host: DomainName = format!("ns{k}.nic.{cc}").parse().expect("nic host parses");
                let ip = self.host_ips[&host];
                z.add_ns(origin.clone(), host.clone());
                z.add_a(host.clone(), ip);
                root_zone.add_ns(origin.clone(), host.clone());
                root_zone.add_glue(host, ip);
            }
            z.set_soa(Soa::new(
                format!("ns1.nic.{cc}").parse().expect("host parses"),
                format!("hostmaster.nic.{cc}").parse().expect("rname parses"),
            ));
            // Local provider farm addresses live in the ccTLD zone.
            for (host, ip) in &host_entries {
                if host.suffix(1) == origin && !host.is_within(&self.b.d_gov[&code]) {
                    z.add_a(host.clone(), *ip);
                }
            }
            zones.insert(origin, z);
        }
        zones.insert(DomainName::root(), root_zone);

        // Zones for every living domain (d_gov, intermediates, leaves).
        for di in 0..self.b.domains.len() {
            let rec = &self.b.domains[di];
            let out = &self.outs[di];
            if out.c.is_empty() {
                continue;
            }
            let name = rec.name.clone();
            let mut z = Zone::new(name.clone());
            for host in &out.c {
                z.add_ns(name.clone(), host.clone());
            }
            let rname_base = match rec.final_style().providers().first() {
                Some(&pid) => {
                    let provider = self.b.catalog.get(pid);
                    provider
                        .soa_rname
                        .clone()
                        .or_else(|| provider.primary_ns_domain())
                        .unwrap_or_else(|| name.clone())
                }
                None => name.clone(),
            };
            z.set_soa(Soa::new(
                out.c[0].clone(),
                format!("hostmaster.{rname_base}").parse().expect("rname parses"),
            ));
            if let Ok(www) = name.prepend("www") {
                let (gov_asn, _) = self.b.country_asns[rec.country_idx];
                z.add_a(www, self.b.plan.fresh_host(gov_asn));
            }
            // Authoritative A records for in-zone hosts (own ns1/ns2 and
            // alias names).
            for host in out.c.iter().chain(&out.p) {
                if host.is_subdomain_of(&name) {
                    if let Some(&ip) = self.host_ips.get(host) {
                        z.add_a(host.clone(), ip);
                    }
                }
            }
            zones.insert(name, z);
        }

        // Portal websites: every resolvable Knowledge Base link gets an A
        // record in its enclosing zone (the 11 unresolvable-link quirks
        // keep their dead FQDNs; the squatted portal already points at
        // the parking service through its gTLD zone).
        let country_idx: HashMap<crate::country::CountryCode, usize> =
            self.b.countries.iter().enumerate().map(|(i, c)| (c.code, i)).collect();
        let portal_entries: Vec<(crate::country::CountryCode, DomainName)> =
            self.b.unkb.iter().map(|e| (e.country, e.portal_fqdn.clone())).collect();
        for (country, portal) in portal_entries {
            let dead_link = portal.labels().first().is_some_and(|l| l.as_str() == "old-portal");
            let squatted = self.b.squatted_portal.as_ref() == Some(&portal);
            if dead_link || squatted {
                continue;
            }
            let Some(owner_zone) = portal.ancestors().skip(1).find(|anc| zones.contains_key(anc))
            else {
                continue;
            };
            let ci = country_idx[&country];
            let (gov_asn, _) = self.b.country_asns[ci];
            let zone = zones.get_mut(&owner_zone).expect("just found");
            if zone.rrset(&portal, govdns_model::RecordType::A).is_none() {
                let ip = self.b.plan.fresh_host(gov_asn);
                zone.add_a(portal, ip);
            }
        }

        // Delegations: every living domain's P goes into its parent zone.
        // Registered-domain seeds like laogov.gov.la have no gov.la zone;
        // their cut lives directly in the ccTLD zone (gov.la is an empty
        // non-terminal there), so walk up to the closest existing zone.
        for di in 0..self.b.domains.len() {
            let rec = &self.b.domains[di];
            let out = &self.outs[di];
            if out.p.is_empty() {
                continue;
            }
            let parent_origin = rec.parent_zone.ancestors().find(|anc| zones.contains_key(anc));
            let Some(parent) = parent_origin.and_then(|o| zones.get_mut(&o)) else {
                continue;
            };
            for host in &out.p {
                parent.add_ns(rec.name.clone(), host.clone());
                // Glue for in-bailiwick targets.
                if host.is_within(parent.origin()) {
                    if let Some(&ip) = self.host_ips.get(host) {
                        parent.add_glue(host.clone(), ip);
                    }
                }
            }
        }

        // Wrap zones in Arcs and attach them to servers.
        let arcs: BTreeMap<DomainName, Arc<Zone>> =
            zones.into_iter().map(|(k, v)| (k, Arc::new(v))).collect();
        let mut servers: HashMap<Ipv4Addr, AuthoritativeServer> = HashMap::new();
        let serve = |servers: &mut HashMap<Ipv4Addr, AuthoritativeServer>,
                     ip: Ipv4Addr,
                     behavior: ServerBehavior,
                     zone: Option<&Arc<Zone>>| {
            let entry = servers.entry(ip).or_insert_with(|| AuthoritativeServer::new(ip, behavior));
            if let Some(z) = zone {
                entry.add_zone(Arc::clone(z));
            }
        };

        // Infrastructure servers.
        for (_, ip) in &root_hosts {
            serve(&mut servers, *ip, ServerBehavior::Responsive, arcs.get(&DomainName::root()));
        }
        for tld in gtlds {
            let origin: DomainName = tld.parse().expect("gtld parses");
            serve(&mut servers, gtld_ips[tld], ServerBehavior::Responsive, arcs.get(&origin));
        }
        for ci in 0..self.b.countries.len() {
            let cc = self.b.countries[ci].code.as_str().to_owned();
            let origin: DomainName = cc.parse().expect("cctld parses");
            for k in 1..=2 {
                let host: DomainName = format!("ns{k}.nic.{cc}").parse().expect("nic host parses");
                serve(
                    &mut servers,
                    self.host_ips[&host],
                    ServerBehavior::Responsive,
                    arcs.get(&origin),
                );
            }
        }
        // The parking service.
        serve(
            &mut servers,
            self.parking_ip,
            ServerBehavior::Parking {
                web_ip: self.parking_ip,
                ns_names: vec![
                    "ns1.parkingdns.com".parse().expect("host parses"),
                    "ns2.parkingdns.com".parse().expect("host parses"),
                ],
            },
            None,
        );

        // Every provider host gets a server (so lame hosts answer REFUSED
        // rather than vanishing).
        for provider in self.b.catalog.iter() {
            for (i, (a, b)) in provider.pool.iter().enumerate() {
                let _ = i;
                for host in [a, b] {
                    if let Some(&ip) = self.host_ips.get(host) {
                        serve(&mut servers, ip, ServerBehavior::Responsive, None);
                    }
                }
            }
        }

        // Domain zones onto their serving hosts.
        for di in 0..self.b.domains.len() {
            let rec = &self.b.domains[di];
            let out = &self.outs[di];
            if out.c.is_empty() {
                continue;
            }
            let zone = arcs.get(&rec.name).expect("zone built for living domain");
            let mut serving: Vec<&DomainName> = out.c.iter().collect();
            for h in &out.p {
                if !out.c.contains(h) {
                    serving.push(h);
                }
            }
            for host in serving {
                if out.lame.contains(host) || self.dead_hosts.contains(host) {
                    continue;
                }
                // Parked hosts answer for everything already.
                let Some(&ip) = self.host_ips.get(host) else { continue };
                if ip == self.parking_ip {
                    continue;
                }
                let behavior = if self.relative_bug_ips.contains(&ip) {
                    ServerBehavior::RelativeNameBug
                } else {
                    ServerBehavior::Responsive
                };
                serve(&mut servers, ip, behavior, Some(zone));
            }
        }

        // Central government servers also serve the d_gov zone (they are
        // its apex hosts) — covered above because d_gov's C is central
        // pair 0, but the other central hosts exist too.
        for ci in 0..self.b.countries.len() {
            let code = self.b.countries[ci].code;
            let d_gov = self.b.d_gov[&code].clone();
            let zone = arcs.get(&d_gov);
            let dgov_lame = self
                .b
                .domains
                .iter()
                .position(|r| r.name == d_gov)
                .map(|di| self.outs[di].lame.clone())
                .unwrap_or_default();
            for host in &self.central_hosts[ci] {
                if self.dead_hosts.contains(host) || dgov_lame.contains(host) {
                    continue;
                }
                let ip = self.host_ips[host];
                serve(&mut servers, ip, ServerBehavior::Responsive, zone);
            }
        }

        // Assemble the network.
        let mut network =
            SimNetwork::new(self.b.cfg.seed ^ 0x66).with_loss_rate(self.b.cfg.loss_rate);
        for (_, server) in servers {
            network.add_server(server);
        }
        let roots: Vec<Ipv4Addr> = root_hosts.iter().map(|&(_, ip)| ip).collect();

        // Ground truth.
        let mut truth = WorldTruth { d_gov: self.b.d_gov.clone(), domains: Vec::new() };
        for (di, rec) in self.b.domains.iter().enumerate() {
            let out = &self.outs[di];
            let code = self.b.countries[rec.country_idx].code;
            truth.domains.push(DomainTruth {
                timeline: materialize_timeline(rec, collection, code),
                faults: out.faults.clone(),
                parent_ns: out.p.clone(),
                child_ns: out.c.clone(),
                alive_2021: out.alive,
            });
        }

        World {
            countries: self.b.countries,
            catalog: self.b.catalog,
            network,
            roots,
            pdns,
            asn_db: self.b.plan.into_asn_db(),
            registrar: self.registrar,
            webarchive: self.b.webarchive,
            unkb: self.b.unkb,
            registry_docs: self.b.registry_docs,
            collection_date: collection,
            truth,
        }
    }
}

/// Merges a hostname's first two labels — the trailing-dot typo that
/// turns `pns12.cloudns.net` into `pns12cloudns.net`.
fn typo_of(host: &DomainName) -> Option<DomainName> {
    let labels = host.labels();
    if labels.len() < 3 {
        return None;
    }
    let merged = format!("{}{}", labels[0], labels[1]);
    let rest: Vec<String> = labels[2..].iter().map(|l| l.as_str().to_owned()).collect();
    format!("{merged}.{}", rest.join(".")).parse().ok()
}

use super::sample_policy;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typo_merges_first_two_labels() {
        let host: DomainName = "pns12.cloudns.net".parse().unwrap();
        assert_eq!(typo_of(&host).unwrap().to_string(), "pns12cloudns.net");
        let short: DomainName = "cloudns.net".parse().unwrap();
        assert!(typo_of(&short).is_none());
    }
}
