//! The paper's published aggregates, used in two ways: as generation
//! targets for [`WorldGenerator`](crate::WorldGenerator) and as the
//! expected values EXPERIMENTS.md compares measured output against.
//!
//! Counts are at paper scale (the world's `scale` knob multiplies them);
//! rates are scale-invariant.

/// First year of the longitudinal window.
pub const FIRST_YEAR: i32 = 2011;
/// Last full year of the longitudinal window.
pub const LAST_YEAR: i32 = 2020;

/// Domains with NS records in PDNS, per year 2011–2020 (Fig 2; thousands
/// interpolated between the published 113.5k start, ~194k 2019 peak and
/// 192.6k end with the China consolidation dip).
pub const DOMAINS_PER_YEAR: [u32; 10] =
    [113_500, 121_000, 129_000, 137_500, 146_500, 156_000, 166_500, 178_000, 194_000, 192_600];

/// Single-nameserver domains per year (Fig 6/7 context: 4.8k → 5.9k).
pub const D1NS_PER_YEAR: [u32; 10] =
    [4_800, 4_900, 5_000, 5_100, 5_250, 5_400, 5_500, 5_650, 5_800, 5_900];

/// Annual survival probability of a single-NS domain. `0.84^9 ≈ 0.21`,
/// matching Fig 6's "21% of the 2011 cohort still active in 2020".
pub const D1NS_SURVIVAL_RATE: f64 = 0.84;

/// Annual survival probability of a replicated domain.
pub const MULTI_NS_SURVIVAL_RATE: f64 = 0.97;

/// Fraction of single-NS domains on a private (in-`d_gov`) deployment
/// (Fig 7: "over 71%" every year).
pub const D1NS_PRIVATE_SHARE: f64 = 0.75;

/// Fraction of all domains on a private deployment (Fig 7: "less than
/// 34%").
pub const OVERALL_PRIVATE_SHARE: f64 = 0.31;

/// Share of active-measurement domains using at least two nameservers
/// (§IV-A: 98.4%).
pub const MULTI_NS_SHARE_ACTIVE: f64 = 0.984;

/// Of the single-NS domains probed actively, the fraction with no
/// authoritative response at all (Fig 8 headline: 60.1%).
pub const D1NS_STALE_RATE: f64 = 0.601;

/// Active collection funnel at paper scale (§III-B).
pub mod funnel {
    /// Domains queried after PDNS discovery and disposable filtering.
    pub const QUERIED: u32 = 147_000;
    /// Domains with at least one response from a parent-zone nameserver.
    pub const PARENT_RESPONSIVE: u32 = 115_000;
    /// Domains where at least one parent response was non-empty.
    pub const PARENT_NONEMPTY: u32 = 96_000;
}

/// DNS hierarchy level mix among studied domains (§III-B).
pub mod levels {
    /// Second-level domains: "less than 1%".
    pub const SECOND: f64 = 0.008;
    /// Third-level domains: 85.4%.
    pub const THIRD: f64 = 0.854;
    /// Fourth-level domains: 10.9%.
    pub const FOURTH: f64 = 0.109;
    /// Fifth level and deeper: the remainder.
    pub const FIFTH_PLUS: f64 = 1.0 - SECOND - THIRD - FOURTH;
}

/// Table I: share of multi-NS domains whose nameservers resolve to more
/// than one IP, more than one /24, and more than one ASN — total and for
/// the ten countries with the most records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityTarget {
    /// ISO alpha-2 code, or "**" for the all-country aggregate.
    pub country: &'static str,
    /// Multi-NS domains at paper scale.
    pub domains: u32,
    /// Fraction with |IP| > 1.
    pub multi_ip: f64,
    /// Fraction with |/24| > 1.
    pub multi_24: f64,
    /// Fraction with |ASN| > 1.
    pub multi_asn: f64,
}

/// Table I rows (total plus top-10 countries).
pub const DIVERSITY_TARGETS: [DiversityTarget; 11] = [
    DiversityTarget {
        country: "**",
        domains: 94_848,
        multi_ip: 0.898,
        multi_24: 0.715,
        multi_asn: 0.329,
    },
    DiversityTarget {
        country: "CN",
        domains: 13_623,
        multi_ip: 0.973,
        multi_24: 0.957,
        multi_asn: 0.524,
    },
    DiversityTarget {
        country: "TH",
        domains: 8_941,
        multi_ip: 0.361,
        multi_24: 0.317,
        multi_asn: 0.136,
    },
    DiversityTarget {
        country: "BR",
        domains: 7_271,
        multi_ip: 0.957,
        multi_24: 0.544,
        multi_asn: 0.137,
    },
    DiversityTarget {
        country: "MX",
        domains: 5_256,
        multi_ip: 0.900,
        multi_24: 0.674,
        multi_asn: 0.257,
    },
    DiversityTarget {
        country: "GB",
        domains: 4_788,
        multi_ip: 0.997,
        multi_24: 0.961,
        multi_asn: 0.255,
    },
    DiversityTarget {
        country: "TR",
        domains: 4_528,
        multi_ip: 0.911,
        multi_24: 0.726,
        multi_asn: 0.421,
    },
    DiversityTarget {
        country: "IN",
        domains: 4_426,
        multi_ip: 0.934,
        multi_24: 0.841,
        multi_asn: 0.106,
    },
    DiversityTarget {
        country: "AU",
        domains: 3_707,
        multi_ip: 0.992,
        multi_24: 0.917,
        multi_asn: 0.090,
    },
    DiversityTarget {
        country: "UA",
        domains: 3_421,
        multi_ip: 0.990,
        multi_24: 0.623,
        multi_asn: 0.451,
    },
    DiversityTarget {
        country: "AR",
        domains: 2_795,
        multi_ip: 0.976,
        multi_24: 0.718,
        multi_asn: 0.305,
    },
];

/// Default diversity profile for countries outside the top ten, chosen so
/// the weighted total approaches Table I's aggregate row.
pub const DEFAULT_DIVERSITY: DiversityTarget =
    DiversityTarget { country: "--", domains: 0, multi_ip: 0.92, multi_24: 0.715, multi_asn: 0.40 };

/// Defective delegations (§IV-C).
pub mod delegation {
    /// Domains with at least one defective delegation: 29.5%.
    pub const ANY_DEFECTIVE_RATE: f64 = 0.295;
    /// Domains with a *partial* defective delegation considering parent
    /// zone information: 25.4%.
    pub const PARTIAL_RATE: f64 = 0.254;
    /// Registrable nameserver domains found via defective delegations, at
    /// paper scale.
    pub const AVAILABLE_NS_DOMAINS: u32 = 805;
    /// Domains relying on those registrable nameserver domains.
    pub const AFFECTED_DOMAINS: u32 = 1_121;
    /// Countries with affected domains.
    pub const AFFECTED_COUNTRIES: u32 = 49;
    /// Of the affected domains, those with no authoritative response at
    /// all (stale): "more than half (625)".
    pub const AFFECTED_FULLY_STALE: u32 = 625;
    /// Registration cost distribution (Fig 12).
    pub const COST_MIN_USD: f64 = 0.01;
    /// Median registration cost.
    pub const COST_MEDIAN_USD: f64 = 11.99;
    /// Maximum (premium) registration cost.
    pub const COST_MAX_USD: f64 = 20_000.0;
}

/// Parent/child consistency (§IV-D, Fig 13).
pub mod consistency {
    /// Responsive domains with identical parent and child NS sets: 76.8%.
    pub const EQUAL_RATE: f64 = 0.768;
    /// Second-level domains with identical sets: 93.5%.
    pub const EQUAL_RATE_SECOND_LEVEL: f64 = 0.935;
    /// Among `P != C` domains, those also having a partial defective
    /// delegation: 40.9%.
    pub const DISAGREE_WITH_LAME_RATE: f64 = 0.409;
    /// Breakdown of the non-equal cases, as fractions of *all* responsive
    /// domains. These sum to `1 - EQUAL_RATE`.
    pub mod breakdown {
        /// Parent's set is a strict subset of the child's.
        pub const P_SUBSET_C: f64 = 0.050;
        /// Child's set is a strict subset of the parent's.
        pub const C_SUBSET_P: f64 = 0.082;
        /// Sets intersect without containment.
        pub const PARTIAL_OVERLAP: f64 = 0.060;
        /// Sets disjoint but resolving to overlapping IPv4 addresses.
        pub const DISJOINT_IP_OVERLAP: f64 = 0.016;
        /// Sets disjoint with disjoint addresses.
        pub const DISJOINT_NO_IP: f64 = 0.024;
    }
    /// Registrable nameserver domains reachable only via inconsistency
    /// (no defective delegation): 13 at paper scale.
    pub const AVAILABLE_NS_DOMAINS: u32 = 13;
    /// Domains those 13 serve.
    pub const AFFECTED_DOMAINS: u32 = 26;
    /// Countries involved.
    pub const AFFECTED_COUNTRIES: u32 = 7;
    /// Minimum registration cost among them (USD).
    pub const COST_MIN_USD: f64 = 300.0;
}

/// Seed-selection quirks (§III-A).
pub mod seeds {
    /// UN member states (and portal links).
    pub const COUNTRIES: u32 = 193;
    /// Portal links whose FQDN does not resolve.
    pub const UNRESOLVABLE_LINKS: u32 = 11;
    /// Of those, countries whose MSQ lists a different, working domain.
    pub const MSQ_MISMATCHES: u32 = 2;
    /// Portal links serving third-party ads (squatted).
    pub const SQUATTED_LINKS: u32 = 1;
    /// Countries where the gov suffix could not be verified, so the
    /// registered domain is used instead.
    pub const UNVERIFIABLE_SUFFIXES: u32 = 3;
    /// Countries whose portal is a registered domain outside any gov
    /// suffix, verified via MSQ/Whois (the regjeringen.no case).
    pub const REGISTERED_DOMAIN_PORTALS: u32 = 1;
}

/// Provider-centralization headlines (§IV-B).
pub mod providers {
    /// Countries using any single top provider in 2011 (Table III).
    pub const TOP_PROVIDER_COUNTRIES_2011: u32 = 52;
    /// Countries using any single top provider in 2020 (Table III): a 60%
    /// increase.
    pub const TOP_PROVIDER_COUNTRIES_2020: u32 = 85;
    /// Sub-region groups (22 UN sub-regions + the 10 largest countries
    /// treated as their own groups).
    pub const SUBREGION_GROUPS: u32 = 32;
}

/// Scales a paper-scale count by the world's scale factor.
pub fn scaled(count: u32, scale: f64) -> u32 {
    ((f64::from(count)) * scale).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yearly_counts_are_calibrated_to_the_figures() {
        assert_eq!(DOMAINS_PER_YEAR[0], 113_500);
        assert_eq!(DOMAINS_PER_YEAR[9], 192_600);
        // The 2019→2020 dip (China consolidation) is present.
        assert!(DOMAINS_PER_YEAR[9] < DOMAINS_PER_YEAR[8]);
        // Growth factor ~1.7 overall.
        let growth = f64::from(DOMAINS_PER_YEAR[9]) / f64::from(DOMAINS_PER_YEAR[0]);
        assert!((1.65..1.75).contains(&growth));
        let d1ns_growth = f64::from(D1NS_PER_YEAR[9]) / f64::from(D1NS_PER_YEAR[0]);
        assert!((1.15..1.25).contains(&d1ns_growth));
    }

    #[test]
    fn survival_rate_matches_cohort_overlap() {
        let remaining = D1NS_SURVIVAL_RATE.powi(9);
        assert!((0.19..0.23).contains(&remaining), "2011 cohort residue {remaining}");
    }

    #[test]
    fn level_mix_sums_to_one() {
        let total = levels::SECOND + levels::THIRD + levels::FOURTH + levels::FIFTH_PLUS;
        assert!((total - 1.0).abs() < 1e-9);
        const { assert!(levels::FIFTH_PLUS >= 0.0) };
    }

    #[test]
    fn consistency_breakdown_sums_to_disagreement() {
        use consistency::breakdown as b;
        let sum = b::P_SUBSET_C
            + b::C_SUBSET_P
            + b::PARTIAL_OVERLAP
            + b::DISJOINT_IP_OVERLAP
            + b::DISJOINT_NO_IP;
        assert!((sum - (1.0 - consistency::EQUAL_RATE)).abs() < 1e-9);
    }

    #[test]
    fn diversity_targets_include_all_top10() {
        assert_eq!(DIVERSITY_TARGETS[0].country, "**");
        assert_eq!(DIVERSITY_TARGETS.len(), 11);
        let sum: u32 = DIVERSITY_TARGETS[1..].iter().map(|t| t.domains).sum();
        // The top 10 hold ~62% of the 94,848 multi-NS domains.
        assert!((55_000..70_000).contains(&sum));
    }

    #[test]
    fn scaled_rounds() {
        assert_eq!(scaled(100, 0.5), 50);
        assert_eq!(scaled(147_000, 1.0), 147_000);
        assert_eq!(scaled(3, 0.5), 2);
    }
}
