use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::{DomainName, SimDate};

/// The Web Archive stand-in: for each government-registered domain, the
/// earliest date a snapshot shows a government running a website there.
///
/// The paper uses this to bound PDNS history for seed domains that are
/// registered domains rather than reserved suffixes — a domain may have
/// had a previous, non-government life.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebArchive {
    earliest: BTreeMap<DomainName, SimDate>,
}

impl WebArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        WebArchive::default()
    }

    /// Records the earliest government snapshot for `domain`.
    pub fn record(&mut self, domain: DomainName, date: SimDate) {
        self.earliest.entry(domain).and_modify(|d| *d = (*d).min(date)).or_insert(date);
    }

    /// The earliest government snapshot covering `domain`: an exact entry,
    /// or the entry of the closest enclosing recorded domain.
    pub fn earliest_government_use(&self, domain: &DomainName) -> Option<SimDate> {
        domain.ancestors().find_map(|anc| self.earliest.get(&anc).copied())
    }

    /// The earliest snapshot recorded for *exactly* `domain` — no
    /// inheritance from enclosing names. This is how seed selection pins
    /// down which ancestor is the government-registered domain.
    pub fn earliest_exact(&self, domain: &DomainName) -> Option<SimDate> {
        self.earliest.get(domain).copied()
    }

    /// Number of recorded domains.
    pub fn len(&self) -> usize {
        self.earliest.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.earliest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(y: i32, m: u32, dd: u32) -> SimDate {
        SimDate::from_ymd(y, m, dd)
    }

    #[test]
    fn records_and_inherits() {
        let mut wa = WebArchive::new();
        wa.record("regjeringen.no".parse().unwrap(), d(2004, 5, 1));
        assert_eq!(
            wa.earliest_government_use(&"www.regjeringen.no".parse().unwrap()),
            Some(d(2004, 5, 1))
        );
        assert_eq!(
            wa.earliest_government_use(&"regjeringen.no".parse().unwrap()),
            Some(d(2004, 5, 1))
        );
        assert_eq!(wa.earliest_government_use(&"other.no".parse().unwrap()), None);
    }

    #[test]
    fn keeps_the_earliest() {
        let mut wa = WebArchive::new();
        wa.record("jis.gov.jm".parse().unwrap(), d(2008, 1, 1));
        wa.record("jis.gov.jm".parse().unwrap(), d(2003, 1, 1));
        wa.record("jis.gov.jm".parse().unwrap(), d(2010, 1, 1));
        assert_eq!(wa.earliest_government_use(&"jis.gov.jm".parse().unwrap()), Some(d(2003, 1, 1)));
        assert_eq!(wa.len(), 1);
    }
}
