//! End-to-end checks that generated worlds are internally consistent and
//! calibrated: the probe-facing infrastructure works, the PDNS history has
//! the paper's shape, and injected faults are observable.

use govdns_model::{DateRange, DomainName, RecordType};
use govdns_pdns::filter;
use govdns_simnet::StubResolver;
use govdns_world::{FaultClass, WorldConfig, WorldGenerator};

fn small_world() -> govdns_world::World {
    WorldGenerator::new(WorldConfig::small(7).with_scale(0.02)).generate()
}

#[test]
fn world_has_all_substrates() {
    let w = small_world();
    assert_eq!(w.countries.len(), 193);
    assert_eq!(w.unkb.len(), 193);
    assert!(!w.roots.is_empty());
    assert!(w.network.server_count() > 500, "servers: {}", w.network.server_count());
    assert!(!w.pdns.is_empty());
    assert!(w.registrar.available_count() > 0);
    assert!(w.truth().domains.len() > 500);
}

#[test]
fn generation_is_deterministic() {
    let a = WorldGenerator::new(WorldConfig::small(9).with_scale(0.01)).generate();
    let b = WorldGenerator::new(WorldConfig::small(9).with_scale(0.01)).generate();
    assert_eq!(a.truth().domains.len(), b.truth().domains.len());
    for (x, y) in a.truth().domains.iter().zip(&b.truth().domains) {
        assert_eq!(x.timeline.name, y.timeline.name);
        assert_eq!(x.parent_ns, y.parent_ns);
        assert_eq!(x.faults, y.faults);
    }
    assert_eq!(a.pdns.len(), b.pdns.len());
}

#[test]
fn resolver_can_walk_to_a_healthy_domain() {
    let w = small_world();
    let resolver = StubResolver::new(&w.network, w.roots.clone());
    // Find a clean responsive domain in truth and resolve its www.
    let healthy = w
        .truth()
        .domains
        .iter()
        .find(|d| d.alive_2021 && d.faults.is_clean() && !d.child_ns.is_empty())
        .expect("some healthy domain exists");
    let www = healthy.timeline.name.prepend("www").unwrap();
    let addrs = resolver
        .resolve_a(&www)
        .unwrap_or_else(|e| panic!("resolving {www} failed: {e} (ns: {:?})", healthy.child_ns));
    assert!(!addrs.is_empty());
}

#[test]
fn ns_queries_reach_authoritative_servers() {
    let w = small_world();
    let resolver = StubResolver::new(&w.network, w.roots.clone());
    let mut checked = 0;
    for d in w.truth().domains.iter().filter(|d| d.alive_2021 && d.faults.is_clean()) {
        if checked >= 25 {
            break;
        }
        let res = resolver
            .resolve(&d.timeline.name, RecordType::Ns)
            .unwrap_or_else(|e| panic!("NS lookup for {} failed: {e}", d.timeline.name));
        let mut got: Vec<String> =
            res.records.iter().filter_map(|r| r.data.as_ns().map(|n| n.to_string())).collect();
        got.sort();
        let mut want: Vec<String> = d.child_ns.iter().map(|n| n.to_string()).collect();
        want.sort();
        assert_eq!(got, want, "NS mismatch for {}", d.timeline.name);
        checked += 1;
    }
    assert!(checked >= 10, "too few healthy domains checked: {checked}");
}

#[test]
fn fully_stale_domains_have_silent_nameservers() {
    let w = small_world();
    let resolver = StubResolver::new(&w.network, w.roots.clone());
    let mut checked = 0;
    for d in
        w.truth().domains.iter().filter(|d| {
            d.alive_2021 && d.faults.has(FaultClass::FullyStale) && !d.parent_ns.is_empty()
        })
    {
        if checked >= 10 {
            break;
        }
        // Every NS either fails to resolve or does not answer for the zone.
        for host in &d.parent_ns {
            if let Ok(addrs) = resolver.resolve_a(host) {
                for ip in addrs {
                    let q =
                        govdns_model::Message::query(1, d.timeline.name.clone(), RecordType::Ns);
                    let out = w.network.deliver(ip, &q);
                    if let Some(reply) = out.reply() {
                        assert!(
                            !reply.is_authoritative_answer(),
                            "{host} should not answer for stale {}",
                            d.timeline.name
                        );
                    }
                }
            }
        }
        checked += 1;
    }
    assert!(checked > 0, "no fully-stale domains generated");
}

#[test]
fn pdns_history_has_the_papers_shape() {
    let w = small_world();
    // Count domains with stable NS records per year: growth ~1.7x
    // 2011→2020 with a 2019→2020 dip.
    let mut per_year = Vec::new();
    for year in [2011, 2015, 2019, 2020] {
        let window = DateRange::year(year);
        let mut names = std::collections::BTreeSet::new();
        for e in filter::stable(w.pdns.iter()) {
            if e.rtype() == RecordType::Ns && e.active_in(&window) {
                names.insert(e.name.clone());
            }
        }
        per_year.push((year, names.len()));
    }
    let count = |y: i32| per_year.iter().find(|&&(yy, _)| yy == y).unwrap().1 as f64;
    let growth = count(2020) / count(2011);
    assert!((1.4..2.1).contains(&growth), "2011→2020 growth {growth} ({per_year:?})");
    assert!(count(2019) > count(2020), "2019→2020 dip missing ({per_year:?})");
    assert!(count(2015) > count(2011) && count(2015) < count(2019));
}

#[test]
fn single_ns_domains_exist_and_skew_private() {
    let w = small_world();
    let window = DateRange::year(2020);
    // Apply the pipeline's stability notion: transients living under 7
    // days never count as deployments.
    let stable_days = |d: &govdns_world::DomainTruth| {
        d.timeline
            .epochs
            .iter()
            .filter_map(|e| e.span.intersect(&window))
            .map(|s| s.len_days())
            .sum::<i64>()
            >= 7
    };
    let singles: Vec<_> = w
        .truth()
        .domains
        .iter()
        .filter(|d| stable_days(d) && d.timeline.mostly_single_ns_in(&window))
        .collect();
    assert!(!singles.is_empty(), "no single-NS domains in 2020");
    let private = singles
        .iter()
        .filter(|d| {
            d.timeline
                .at(govdns_model::SimDate::from_ymd(2020, 6, 1))
                .is_some_and(|e| e.style.is_private())
        })
        .count();
    let share = private as f64 / singles.len() as f64;
    assert!(share > 0.55, "d1NS private share {share}");
}

#[test]
fn dangling_ns_domains_are_registrable() {
    let w = small_world();
    let dangling: Vec<_> = w
        .truth()
        .domains
        .iter()
        .filter(|d| d.faults.has(FaultClass::DanglingRegistrable))
        .collect();
    assert!(!dangling.is_empty(), "no dangling injections");
    for d in &dangling {
        let has_available = d.parent_ns.iter().any(|h| {
            let reg: DomainName = h.suffix(2);
            w.registrar.is_available(&reg)
        });
        assert!(has_available, "{} has no registrable NS domain", d.timeline.name);
    }
}

#[test]
fn seed_quirks_are_present() {
    let w = small_world();
    // Exactly 193 portal entries; some unresolvable; one squatted (its
    // registered domain is a .com outside any gov suffix).
    let squatted: Vec<_> =
        w.unkb.iter().filter(|e| e.portal_fqdn.suffix(1).to_string() == "com").collect();
    assert_eq!(squatted.len(), 1, "exactly one squatted portal");
    // Registry docs confirm gov suffixes except the three special cases.
    let au: DomainName = "gov.au".parse().unwrap();
    assert_eq!(w.registry_docs.suffix_reserved_for_government(&au), Some(true));
    let la: DomainName = "gov.la".parse().unwrap();
    assert_eq!(w.registry_docs.suffix_reserved_for_government(&la), None);
    // Norway-style registered domain exists with web-archive history.
    let no: DomainName = "regjeringen.no".parse().unwrap();
    assert!(w.webarchive.earliest_government_use(&no).is_some());
}

#[test]
fn parked_dangling_surface_exists() {
    let w = small_world();
    let parked: Vec<_> =
        w.truth().domains.iter().filter(|d| d.faults.has(FaultClass::ParkedDangling)).collect();
    assert!(!parked.is_empty(), "no parked-dangling injections");
    for d in &parked {
        // The parent-only host's registered domain is premium-available.
        let extra: Vec<_> = d.parent_ns.iter().filter(|h| !d.child_ns.contains(h)).collect();
        assert!(!extra.is_empty());
        assert!(extra
            .iter()
            .any(|h| w.registrar.price_of(&h.suffix(2)).is_some_and(|p| p >= 300.0)));
    }
}

#[test]
fn provider_market_tracks_yearly_targets() {
    // The yearly rebalancing should keep each named provider's customer
    // count near its interpolated target — that is what makes Tables
    // II-III reproducible.
    let w = WorldGenerator::new(WorldConfig::small(11).with_scale(0.05)).generate();
    let catalog = &w.catalog;
    for label in ["AWS DNS", "cloudflare.com", "domaincontrol.com"] {
        let provider = catalog.named().find(|p| p.label == label).unwrap();
        for year in [2014, 2017, 2020] {
            let target = provider.target_count(year) * 0.05;
            let window = DateRange::year(year);
            let have = w
                .truth()
                .domains
                .iter()
                .filter(|d| {
                    d.timeline.epochs.iter().any(|e| {
                        e.span.overlaps(&window) && e.style.providers().contains(&provider.id)
                    })
                })
                .count() as f64;
            // Within a factor-two band (migration timing and churn add
            // slack); the growth ordering is the real claim.
            assert!(
                have >= target * 0.5 - 2.0 && have <= target * 2.0 + 4.0,
                "{label} {year}: have {have}, target {target:.1}"
            );
        }
        let c2014 = provider.target_count(2014);
        let c2020 = provider.target_count(2020);
        assert!(c2020 > c2014, "{label} must grow over the decade");
    }
}

#[test]
fn everydns_customers_disappear_by_2020() {
    let w = WorldGenerator::new(WorldConfig::small(11).with_scale(0.05)).generate();
    let everydns = w.catalog.named().find(|p| p.label == "everydns.net").unwrap();
    let users_at = |date: govdns_model::SimDate| {
        w.truth()
            .domains
            .iter()
            .filter(|d| {
                d.timeline.at(date).is_some_and(|e| e.style.providers().contains(&everydns.id))
            })
            .count()
    };
    assert!(
        users_at(govdns_model::SimDate::from_ymd(2012, 6, 1)) > 0,
        "everydns should have customers early"
    );
    assert_eq!(
        users_at(govdns_model::SimDate::from_ymd(2020, 12, 15)),
        0,
        "everydns died before the end of 2020"
    );
}

#[test]
fn registrar_never_offers_live_provider_domains() {
    // A typo'd NS name inside a provider's own domain must not put that
    // provider's registered domain on the market.
    let w = WorldGenerator::new(WorldConfig::small(20220627).with_scale(0.05)).generate();
    for p in w.catalog.iter() {
        for dom in p.style.registered_domains() {
            assert!(
                !w.registrar.is_available(&dom),
                "{dom} belongs to {} but is marked available",
                p.label
            );
        }
    }
    // The same holds for every in-use nameserver's registered domain
    // among healthy domains.
    for d in w.truth().domains.iter().filter(|d| d.faults.is_clean()) {
        for h in &d.child_ns {
            if h.level() >= 2 {
                assert!(
                    !w.registrar.is_available(&h.suffix(2)),
                    "{} is in use by {} but marked available",
                    h.suffix(2),
                    d.timeline.name
                );
            }
        }
    }
}
