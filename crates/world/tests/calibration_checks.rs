//! Direct checks that generated worlds hit their calibration targets:
//! seed-selection quirk counts, the top-10 country ordering, provider
//! anchors, and registrar pricing.

use std::collections::BTreeMap;

use govdns_model::DateRange;
use govdns_simnet::StubResolver;
use govdns_world::{calibration, CountryCode, WorldConfig, WorldGenerator};

fn world() -> govdns_world::World {
    WorldGenerator::new(WorldConfig::small(2024).with_scale(0.04)).generate()
}

#[test]
fn unkb_quirks_have_exact_counts() {
    let w = world();
    let resolver = StubResolver::new(&w.network, w.roots.clone());
    let mut unresolvable = 0;
    let mut msq_mismatches = 0;
    for entry in w.unkb.iter() {
        let resolved = resolver.resolve_a(&entry.portal_fqdn).is_ok_and(|a| !a.is_empty());
        if !resolved {
            unresolvable += 1;
        }
        if entry.msq_fqdn.as_ref().is_some_and(|m| *m != entry.portal_fqdn) && resolved {
            // The squatted portal: resolves, but the MSQ disagrees and
            // the portal's registered domain has no government evidence.
            if entry.portal_fqdn.suffix(1).to_string() == "com" {
                msq_mismatches += 1;
            }
        }
    }
    assert_eq!(
        unresolvable,
        calibration::seeds::UNRESOLVABLE_LINKS as usize,
        "unresolvable portal links"
    );
    assert_eq!(msq_mismatches, calibration::seeds::SQUATTED_LINKS as usize, "squatted links");
}

#[test]
fn top10_countries_appear_in_paper_order() {
    let w = world();
    // Count responsive domains per country from ground truth.
    let window = DateRange::year(2020);
    let mut per_country: BTreeMap<CountryCode, usize> = BTreeMap::new();
    for d in &w.truth().domains {
        if d.alive_2021 && !d.parent_ns.is_empty() && d.timeline.active_in(&window) {
            let country = d.timeline.country;
            *per_country.entry(country).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(CountryCode, usize)> = per_country.into_iter().collect();
    ranked.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
    let top: Vec<&str> = ranked.iter().take(10).map(|(c, _)| c.as_str()).collect();
    // Table I order: CN, TH, BR, MX, GB, TR, IN, AU, UA, AR.
    assert_eq!(top, vec!["cn", "th", "br", "mx", "gb", "tr", "in", "au", "ua", "ar"]);
}

#[test]
fn provider_anchor_counts_scale() {
    let w = world();
    let aws = w.catalog.named().find(|p| p.label == "AWS DNS").unwrap();
    assert_eq!(aws.count_2020, 5_193.0);
    assert_eq!(aws.count_2011, 5.0);
    let dnspod = w.catalog.named().find(|p| p.label == "dnspod.net").unwrap();
    assert_eq!(dnspod.scope.map(|c| c.as_str().to_owned()), Some("cn".to_owned()));
    // Interpolation is monotone for growers and hits the anchors.
    assert!((aws.target_count(2020) - 5_193.0).abs() < 1.0);
    assert!(aws.target_count(2015) > aws.target_count(2012));
}

#[test]
fn registrar_prices_match_figure_12_distribution() {
    let w = world();
    let mut prices: Vec<f64> = w.registrar.iter_available().map(|(_, p)| p).collect();
    assert!(prices.len() > 10, "available domains: {}", prices.len());
    prices.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(prices[0] >= calibration::delegation::COST_MIN_USD);
    assert!(*prices.last().unwrap() <= calibration::delegation::COST_MAX_USD);
    let median = prices[prices.len() / 2];
    assert!(
        (3.0..60.0).contains(&median),
        "median {median} (paper: 11.99; premium parked names pull it up slightly)"
    );
}

#[test]
fn fault_rates_land_in_calibrated_bands() {
    let w = world();
    use govdns_world::FaultClass;
    let responsive: Vec<_> = w
        .truth()
        .domains
        .iter()
        .filter(|d| d.alive_2021 && !d.parent_ns.is_empty() && !d.child_ns.is_empty())
        .collect();
    let total = responsive.len() as f64;
    let partial = responsive
        .iter()
        .filter(|d| d.faults.classes().iter().any(|c| matches!(c, FaultClass::PartialLame { .. })))
        .count() as f64;
    assert!((0.12..0.28).contains(&(partial / total)), "partial-lame rate {}", partial / total);
    let inconsistent =
        responsive.iter().filter(|d| d.faults.inconsistency().is_some()).count() as f64;
    assert!(
        (0.10..0.30).contains(&(inconsistent / total)),
        "inconsistency rate {}",
        inconsistent / total
    );
}
