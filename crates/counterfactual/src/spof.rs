//! The ranked single-points-of-failure report: which shared
//! infrastructure, when it fails, darkens the most governments.
//!
//! Every rendering (text table, CSV, canonical JSON) is a deterministic
//! function of the sweep inputs: entries are ranked by governments
//! darkened with fixed tiebreaks, collections are sorted, and the JSON
//! is hand-written with a fixed field order so CI can byte-compare two
//! identically-seeded sweeps.

use std::fmt::Write as _;

use govdns_core::DomainClass;

use crate::recovery::RecoveryEntry;
use crate::scenario::ScenarioKind;

/// One darkened domain's class transition under a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Darkened {
    /// The domain.
    pub domain: String,
    /// The country whose government it belongs to.
    pub country: String,
    /// Baseline class (resolvable: degraded or authoritative).
    pub from: DomainClass,
    /// Scenario class (dark: stale, removed, or unreachable).
    pub to: DomainClass,
}

/// One scenario's ranked outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpofEntry {
    /// Scenario identifier, `kind:subject`.
    pub id: String,
    /// Scenario family.
    pub kind: ScenarioKind,
    /// The failing subject.
    pub subject: String,
    /// Individual addresses in the blast set.
    pub blast_addrs: usize,
    /// Whole /24s in the blast set.
    pub blast_prefixes: usize,
    /// Baseline domains touching the blast set.
    pub candidate_domains: usize,
    /// Domains that went from resolvable to dark.
    pub domains_darkened: usize,
    /// Countries with at least one darkened domain.
    pub countries_darkened: usize,
    /// The darkened countries, sorted.
    pub countries: Vec<String>,
    /// Every darkened domain's transition, sorted by domain.
    pub darkened: Vec<Darkened>,
}

/// The ranked report over a full scenario sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpofReport {
    /// World seed of the sweep.
    pub seed: u64,
    /// World scale in parts-per-million.
    pub scale_ppm: u64,
    /// Baseline domains measured.
    pub baseline_domains: usize,
    /// Baseline domains already dark before any scenario.
    pub baseline_dark: usize,
    /// Scenario outcomes, ranked: countries darkened desc, then domains
    /// darkened desc, then id.
    pub entries: Vec<SpofEntry>,
    /// TTL-driven recovery timelines, one per swept scenario in ranked
    /// order — empty unless the sweep ran with recovery modeling, and
    /// omitted from every rendering when empty (so reports without it
    /// are byte-identical to pre-recovery reports).
    pub recovery: Vec<RecoveryEntry>,
}

/// Whether a class counts as dark: no authoritative answer reached the
/// vantage point (unreachable, removed, or stale).
pub fn is_dark(class: DomainClass) -> bool {
    class <= DomainClass::Stale
}

impl SpofReport {
    /// Sorts `entries` into rank order (in place, then returns self) —
    /// the one ordering every rendering shares. Recovery timelines are
    /// re-threaded onto the same order, so rank N's timeline is always
    /// `recovery[N]`.
    #[must_use]
    pub fn ranked(mut self) -> Self {
        self.entries.sort_by(|a, b| {
            b.countries_darkened
                .cmp(&a.countries_darkened)
                .then_with(|| b.domains_darkened.cmp(&a.domains_darkened))
                .then_with(|| a.id.cmp(&b.id))
        });
        if !self.recovery.is_empty() {
            let mut by_id: std::collections::BTreeMap<String, RecoveryEntry> =
                self.recovery.drain(..).map(|r| (r.id.clone(), r)).collect();
            self.recovery = self.entries.iter().filter_map(|e| by_id.remove(&e.id)).collect();
        }
        self
    }

    /// A copy restricted to one country: darkened lists are filtered to
    /// `cc`, counts recomputed, scenarios that no longer darken anything
    /// dropped, and the remainder re-ranked.
    #[must_use]
    pub fn filtered_by_country(&self, cc: &str) -> SpofReport {
        let entries: Vec<SpofEntry> = self
            .entries
            .iter()
            .filter_map(|e| {
                let darkened: Vec<Darkened> =
                    e.darkened.iter().filter(|d| d.country == cc).cloned().collect();
                if darkened.is_empty() {
                    return None;
                }
                Some(SpofEntry {
                    domains_darkened: darkened.len(),
                    countries_darkened: 1,
                    countries: vec![cc.to_owned()],
                    darkened,
                    ..e.clone()
                })
            })
            .collect();
        let kept: std::collections::BTreeSet<&str> =
            entries.iter().map(|e| e.id.as_str()).collect();
        let recovery = self
            .recovery
            .iter()
            .filter(|r| kept.contains(r.id.as_str()))
            .map(|r| RecoveryEntry {
                domains: r.domains.iter().filter(|d| d.country == cc).cloned().collect(),
                ..r.clone()
            })
            .collect();
        SpofReport { entries, recovery, ..self.clone() }.ranked()
    }

    /// The ranked table, fixed-width text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "single points of failure (seed {}, scale_ppm {}, {} scenarios, baseline {} domains, \
             {} already dark)",
            self.seed,
            self.scale_ppm,
            self.entries.len(),
            self.baseline_domains,
            self.baseline_dark
        );
        let _ = writeln!(
            out,
            "{:>4}  {:<40} {:<8} {:>9} {:>8} {:>10} {:>6}",
            "rank", "scenario", "kind", "countries", "domains", "candidates", "blast"
        );
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:<40} {:<8} {:>9} {:>8} {:>10} {:>6}",
                i + 1,
                e.id,
                e.kind,
                e.countries_darkened,
                e.domains_darkened,
                e.candidate_domains,
                format!("{}a/{}p", e.blast_addrs, e.blast_prefixes),
            );
        }
        if !self.recovery.is_empty() {
            let (w, s) = (self.recovery[0].window_s, self.recovery[0].step_s);
            let _ = writeln!(out, "\nrecovery timelines (window {w}s, step {s}s)");
            let _ = writeln!(
                out,
                "{:<40} {:<28} {:>3} {:>9} {:>9}",
                "scenario", "domain", "cc", "dark_at_s", "recover_s"
            );
            for r in &self.recovery {
                for d in &r.domains {
                    let _ = writeln!(
                        out,
                        "{:<40} {:<28} {:>3} {:>9} {:>9}",
                        r.id,
                        d.domain,
                        d.country,
                        d.dark_at_s.map_or_else(|| "-".to_owned(), |t| t.to_string()),
                        d.recover_s.map_or_else(|| "-".to_owned(), |t| t.to_string()),
                    );
                }
            }
        }
        out
    }

    /// CSV: one row per scenario, rank order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rank,id,kind,subject,blast_addrs,blast_prefixes,candidate_domains,\
             domains_darkened,countries_darkened,countries\n",
        );
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                i + 1,
                e.id,
                e.kind,
                e.subject,
                e.blast_addrs,
                e.blast_prefixes,
                e.candidate_domains,
                e.domains_darkened,
                e.countries_darkened,
                e.countries.join(";"),
            );
        }
        if !self.recovery.is_empty() {
            out.push_str("\nscenario,window_s,step_s,domain,country,dark_at_s,recover_s\n");
            for r in &self.recovery {
                for d in &r.domains {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{},{}",
                        r.id,
                        r.window_s,
                        r.step_s,
                        d.domain,
                        d.country,
                        d.dark_at_s.map_or_else(String::new, |t| t.to_string()),
                        d.recover_s.map_or_else(String::new, |t| t.to_string()),
                    );
                }
            }
        }
        out
    }

    /// Canonical JSON: hand-written, fixed field order, sorted
    /// collections — byte-stable across identically-seeded sweeps at
    /// any worker count.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"seed\":{},\"scale_ppm\":{},\"baseline\":{{\"domains\":{},\"dark\":{}}},\
             \"entries\":[",
            self.seed, self.scale_ppm, self.baseline_domains, self.baseline_dark
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"kind\":\"{}\",\"subject\":\"{}\",\"blast_addrs\":{},\
                 \"blast_prefixes\":{},\"candidate_domains\":{},\"domains_darkened\":{},\
                 \"countries_darkened\":{},\"countries\":[",
                escape(&e.id),
                e.kind,
                escape(&e.subject),
                e.blast_addrs,
                e.blast_prefixes,
                e.candidate_domains,
                e.domains_darkened,
                e.countries_darkened,
            );
            for (j, c) in e.countries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(c));
            }
            out.push_str("],\"darkened\":[");
            for (j, d) in e.darkened.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"domain\":\"{}\",\"country\":\"{}\",\"from\":\"{}\",\"to\":\"{}\"}}",
                    escape(&d.domain),
                    escape(&d.country),
                    d.from,
                    d.to,
                );
            }
            out.push_str("]}");
        }
        out.push(']');
        // The recovery section only exists when modeled: a sweep
        // without it renders byte-identically to pre-recovery reports.
        if !self.recovery.is_empty() {
            out.push_str(",\"recovery\":[");
            for (i, r) in self.recovery.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":\"{}\",\"window_s\":{},\"step_s\":{},\"domains\":[",
                    escape(&r.id),
                    r.window_s,
                    r.step_s,
                );
                for (j, d) in r.domains.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"domain\":\"{}\",\"country\":\"{}\",\"dark_at_s\":{},\
                         \"recover_s\":{}}}",
                        escape(&d.domain),
                        escape(&d.country),
                        d.dark_at_s.map_or_else(|| "null".to_owned(), |t| t.to_string()),
                        d.recover_s.map_or_else(|| "null".to_owned(), |t| t.to_string()),
                    );
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping for the identifiers this report embeds
/// (domain names, provider labels, country codes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, countries: &[&str], domains: usize) -> SpofEntry {
        SpofEntry {
            id: id.to_owned(),
            kind: ScenarioKind::Provider,
            subject: id.split_once(':').map_or(id, |(_, s)| s).to_owned(),
            blast_addrs: 2,
            blast_prefixes: 0,
            candidate_domains: domains + 1,
            domains_darkened: domains,
            countries_darkened: countries.len(),
            countries: countries.iter().map(|&c| c.to_owned()).collect(),
            darkened: countries
                .iter()
                .enumerate()
                .map(|(i, &c)| Darkened {
                    domain: format!("d{i}.gov.{c}"),
                    country: c.to_owned(),
                    from: DomainClass::Authoritative,
                    to: DomainClass::Stale,
                })
                .collect(),
        }
    }

    fn report(entries: Vec<SpofEntry>) -> SpofReport {
        SpofReport {
            seed: 7,
            scale_ppm: 10_000,
            baseline_domains: 50,
            baseline_dark: 3,
            entries,
            recovery: Vec::new(),
        }
    }

    fn recovery(id: &str, domain: &str, cc: &str) -> RecoveryEntry {
        RecoveryEntry {
            id: id.to_owned(),
            window_s: 7200,
            step_s: 60,
            domains: vec![crate::recovery::DomainRecovery {
                domain: domain.to_owned(),
                country: cc.to_owned(),
                dark_at_s: Some(3600),
                recover_s: Some(60),
            }],
        }
    }

    #[test]
    fn ranking_orders_by_countries_then_domains_then_id() {
        let r = report(vec![
            entry("provider:b", &["aa"], 4),
            entry("provider:a", &["aa", "bb"], 2),
            entry("provider:c", &["aa"], 4),
        ])
        .ranked();
        let ids: Vec<&str> = r.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["provider:a", "provider:b", "provider:c"]);
    }

    #[test]
    fn text_table_leads_with_rank() {
        let r = report(vec![entry("provider:a", &["aa", "bb"], 2)]).ranked();
        let text = r.render_text();
        assert!(text.contains("single points of failure"));
        assert!(text.lines().any(|l| l.trim_start().starts_with("1  provider:a")), "{text}");
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let r = report(vec![entry("provider:a", &["aa"], 1), entry("provider:b", &["bb"], 1)]);
        assert_eq!(r.to_csv().lines().count(), 3);
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let mut e = entry("provider:a", &["aa"], 1);
        e.subject = "we\"ird\\label".to_owned();
        let r = report(vec![e]);
        let json = r.canonical_json();
        assert_eq!(json, r.clone().canonical_json(), "pure function of the report");
        assert!(json.contains("we\\\"ird\\\\label"));
        assert!(json.starts_with("{\"seed\":7,\"scale_ppm\":10000,"));
    }

    #[test]
    fn country_filter_recounts_and_drops_empties() {
        let r =
            report(vec![entry("provider:a", &["aa", "bb"], 2), entry("provider:b", &["bb"], 1)])
                .ranked();
        let f = r.filtered_by_country("aa");
        assert_eq!(f.entries.len(), 1);
        assert_eq!(f.entries[0].id, "provider:a");
        assert_eq!(f.entries[0].domains_darkened, 1);
        assert_eq!(f.entries[0].countries, vec!["aa".to_owned()]);
    }

    #[test]
    fn recovery_section_renders_only_when_present() {
        let bare = report(vec![entry("provider:a", &["aa"], 1)]).ranked();
        assert!(!bare.render_text().contains("recovery timelines"));
        assert!(!bare.to_csv().contains("window_s"));
        assert!(!bare.canonical_json().contains("\"recovery\""));
        let without = bare.canonical_json();

        let mut with = bare.clone();
        with.recovery = vec![recovery("provider:a", "d0.gov.aa", "aa")];
        let json = with.canonical_json();
        assert!(json.contains("\"recovery\":[{\"id\":\"provider:a\""));
        assert!(json.contains("\"dark_at_s\":3600"));
        assert!(json.starts_with(without.trim_end_matches('}')), "prefix-stable");
        assert!(with.render_text().contains("recovery timelines (window 7200s, step 60s)"));
        assert!(with.to_csv().contains("provider:a,7200,60,d0.gov.aa,aa,3600,60"));
    }

    #[test]
    fn ranking_rethreads_recovery_onto_entry_order() {
        let mut r =
            report(vec![entry("provider:b", &["aa"], 4), entry("provider:a", &["aa", "bb"], 2)]);
        r.recovery = vec![
            recovery("provider:b", "d.gov.aa", "aa"),
            recovery("provider:a", "d.gov.bb", "bb"),
        ];
        let ranked = r.ranked();
        let ids: Vec<&str> = ranked.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["provider:a", "provider:b"]);
        let rids: Vec<&str> = ranked.recovery.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(rids, ids, "timelines follow rank order");
    }

    #[test]
    fn country_filter_narrows_recovery_timelines() {
        let mut r =
            report(vec![entry("provider:a", &["aa", "bb"], 2), entry("provider:b", &["bb"], 1)])
                .ranked();
        r.recovery = vec![
            {
                let mut e = recovery("provider:a", "d0.gov.aa", "aa");
                e.domains.push(crate::recovery::DomainRecovery {
                    domain: "d1.gov.bb".to_owned(),
                    country: "bb".to_owned(),
                    dark_at_s: None,
                    recover_s: None,
                });
                e
            },
            recovery("provider:b", "d0.gov.bb", "bb"),
        ];
        let f = r.filtered_by_country("aa");
        assert_eq!(f.recovery.len(), 1, "provider:b darkened nothing in aa");
        assert_eq!(f.recovery[0].id, "provider:a");
        assert_eq!(f.recovery[0].domains.len(), 1);
        assert_eq!(f.recovery[0].domains[0].domain, "d0.gov.aa");
    }

    #[test]
    fn dark_classes_are_the_bottom_three() {
        assert!(is_dark(DomainClass::Unreachable));
        assert!(is_dark(DomainClass::Removed));
        assert!(is_dark(DomainClass::Stale));
        assert!(!is_dark(DomainClass::Degraded));
        assert!(!is_dark(DomainClass::Authoritative));
    }
}
