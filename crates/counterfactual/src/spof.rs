//! The ranked single-points-of-failure report: which shared
//! infrastructure, when it fails, darkens the most governments.
//!
//! Every rendering (text table, CSV, canonical JSON) is a deterministic
//! function of the sweep inputs: entries are ranked by governments
//! darkened with fixed tiebreaks, collections are sorted, and the JSON
//! is hand-written with a fixed field order so CI can byte-compare two
//! identically-seeded sweeps.

use std::fmt::Write as _;

use govdns_core::DomainClass;

use crate::scenario::ScenarioKind;

/// One darkened domain's class transition under a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Darkened {
    /// The domain.
    pub domain: String,
    /// The country whose government it belongs to.
    pub country: String,
    /// Baseline class (resolvable: degraded or authoritative).
    pub from: DomainClass,
    /// Scenario class (dark: stale, removed, or unreachable).
    pub to: DomainClass,
}

/// One scenario's ranked outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpofEntry {
    /// Scenario identifier, `kind:subject`.
    pub id: String,
    /// Scenario family.
    pub kind: ScenarioKind,
    /// The failing subject.
    pub subject: String,
    /// Individual addresses in the blast set.
    pub blast_addrs: usize,
    /// Whole /24s in the blast set.
    pub blast_prefixes: usize,
    /// Baseline domains touching the blast set.
    pub candidate_domains: usize,
    /// Domains that went from resolvable to dark.
    pub domains_darkened: usize,
    /// Countries with at least one darkened domain.
    pub countries_darkened: usize,
    /// The darkened countries, sorted.
    pub countries: Vec<String>,
    /// Every darkened domain's transition, sorted by domain.
    pub darkened: Vec<Darkened>,
}

/// The ranked report over a full scenario sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpofReport {
    /// World seed of the sweep.
    pub seed: u64,
    /// World scale in parts-per-million.
    pub scale_ppm: u64,
    /// Baseline domains measured.
    pub baseline_domains: usize,
    /// Baseline domains already dark before any scenario.
    pub baseline_dark: usize,
    /// Scenario outcomes, ranked: countries darkened desc, then domains
    /// darkened desc, then id.
    pub entries: Vec<SpofEntry>,
}

/// Whether a class counts as dark: no authoritative answer reached the
/// vantage point (unreachable, removed, or stale).
pub fn is_dark(class: DomainClass) -> bool {
    class <= DomainClass::Stale
}

impl SpofReport {
    /// Sorts `entries` into rank order (in place, then returns self) —
    /// the one ordering every rendering shares.
    #[must_use]
    pub fn ranked(mut self) -> Self {
        self.entries.sort_by(|a, b| {
            b.countries_darkened
                .cmp(&a.countries_darkened)
                .then_with(|| b.domains_darkened.cmp(&a.domains_darkened))
                .then_with(|| a.id.cmp(&b.id))
        });
        self
    }

    /// A copy restricted to one country: darkened lists are filtered to
    /// `cc`, counts recomputed, scenarios that no longer darken anything
    /// dropped, and the remainder re-ranked.
    #[must_use]
    pub fn filtered_by_country(&self, cc: &str) -> SpofReport {
        let entries = self
            .entries
            .iter()
            .filter_map(|e| {
                let darkened: Vec<Darkened> =
                    e.darkened.iter().filter(|d| d.country == cc).cloned().collect();
                if darkened.is_empty() {
                    return None;
                }
                Some(SpofEntry {
                    domains_darkened: darkened.len(),
                    countries_darkened: 1,
                    countries: vec![cc.to_owned()],
                    darkened,
                    ..e.clone()
                })
            })
            .collect();
        SpofReport { entries, ..self.clone() }.ranked()
    }

    /// The ranked table, fixed-width text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "single points of failure (seed {}, scale_ppm {}, {} scenarios, baseline {} domains, \
             {} already dark)",
            self.seed,
            self.scale_ppm,
            self.entries.len(),
            self.baseline_domains,
            self.baseline_dark
        );
        let _ = writeln!(
            out,
            "{:>4}  {:<40} {:<8} {:>9} {:>8} {:>10} {:>6}",
            "rank", "scenario", "kind", "countries", "domains", "candidates", "blast"
        );
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:<40} {:<8} {:>9} {:>8} {:>10} {:>6}",
                i + 1,
                e.id,
                e.kind,
                e.countries_darkened,
                e.domains_darkened,
                e.candidate_domains,
                format!("{}a/{}p", e.blast_addrs, e.blast_prefixes),
            );
        }
        out
    }

    /// CSV: one row per scenario, rank order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rank,id,kind,subject,blast_addrs,blast_prefixes,candidate_domains,\
             domains_darkened,countries_darkened,countries\n",
        );
        for (i, e) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                i + 1,
                e.id,
                e.kind,
                e.subject,
                e.blast_addrs,
                e.blast_prefixes,
                e.candidate_domains,
                e.domains_darkened,
                e.countries_darkened,
                e.countries.join(";"),
            );
        }
        out
    }

    /// Canonical JSON: hand-written, fixed field order, sorted
    /// collections — byte-stable across identically-seeded sweeps at
    /// any worker count.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"seed\":{},\"scale_ppm\":{},\"baseline\":{{\"domains\":{},\"dark\":{}}},\
             \"entries\":[",
            self.seed, self.scale_ppm, self.baseline_domains, self.baseline_dark
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"kind\":\"{}\",\"subject\":\"{}\",\"blast_addrs\":{},\
                 \"blast_prefixes\":{},\"candidate_domains\":{},\"domains_darkened\":{},\
                 \"countries_darkened\":{},\"countries\":[",
                escape(&e.id),
                e.kind,
                escape(&e.subject),
                e.blast_addrs,
                e.blast_prefixes,
                e.candidate_domains,
                e.domains_darkened,
                e.countries_darkened,
            );
            for (j, c) in e.countries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(c));
            }
            out.push_str("],\"darkened\":[");
            for (j, d) in e.darkened.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"domain\":\"{}\",\"country\":\"{}\",\"from\":\"{}\",\"to\":\"{}\"}}",
                    escape(&d.domain),
                    escape(&d.country),
                    d.from,
                    d.to,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for the identifiers this report embeds
/// (domain names, provider labels, country codes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, countries: &[&str], domains: usize) -> SpofEntry {
        SpofEntry {
            id: id.to_owned(),
            kind: ScenarioKind::Provider,
            subject: id.split_once(':').map_or(id, |(_, s)| s).to_owned(),
            blast_addrs: 2,
            blast_prefixes: 0,
            candidate_domains: domains + 1,
            domains_darkened: domains,
            countries_darkened: countries.len(),
            countries: countries.iter().map(|&c| c.to_owned()).collect(),
            darkened: countries
                .iter()
                .enumerate()
                .map(|(i, &c)| Darkened {
                    domain: format!("d{i}.gov.{c}"),
                    country: c.to_owned(),
                    from: DomainClass::Authoritative,
                    to: DomainClass::Stale,
                })
                .collect(),
        }
    }

    fn report(entries: Vec<SpofEntry>) -> SpofReport {
        SpofReport { seed: 7, scale_ppm: 10_000, baseline_domains: 50, baseline_dark: 3, entries }
    }

    #[test]
    fn ranking_orders_by_countries_then_domains_then_id() {
        let r = report(vec![
            entry("provider:b", &["aa"], 4),
            entry("provider:a", &["aa", "bb"], 2),
            entry("provider:c", &["aa"], 4),
        ])
        .ranked();
        let ids: Vec<&str> = r.entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, ["provider:a", "provider:b", "provider:c"]);
    }

    #[test]
    fn text_table_leads_with_rank() {
        let r = report(vec![entry("provider:a", &["aa", "bb"], 2)]).ranked();
        let text = r.render_text();
        assert!(text.contains("single points of failure"));
        assert!(text.lines().any(|l| l.trim_start().starts_with("1  provider:a")), "{text}");
    }

    #[test]
    fn csv_has_one_row_per_entry() {
        let r = report(vec![entry("provider:a", &["aa"], 1), entry("provider:b", &["bb"], 1)]);
        assert_eq!(r.to_csv().lines().count(), 3);
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let mut e = entry("provider:a", &["aa"], 1);
        e.subject = "we\"ird\\label".to_owned();
        let r = report(vec![e]);
        let json = r.canonical_json();
        assert_eq!(json, r.clone().canonical_json(), "pure function of the report");
        assert!(json.contains("we\\\"ird\\\\label"));
        assert!(json.starts_with("{\"seed\":7,\"scale_ppm\":10000,"));
    }

    #[test]
    fn country_filter_recounts_and_drops_empties() {
        let r =
            report(vec![entry("provider:a", &["aa", "bb"], 2), entry("provider:b", &["bb"], 1)])
                .ranked();
        let f = r.filtered_by_country("aa");
        assert_eq!(f.entries.len(), 1);
        assert_eq!(f.entries[0].id, "provider:a");
        assert_eq!(f.entries[0].domains_darkened, 1);
        assert_eq!(f.entries[0].countries, vec!["aa".to_owned()]);
    }

    #[test]
    fn dark_classes_are_the_bottom_three() {
        assert!(is_dark(DomainClass::Unreachable));
        assert!(is_dark(DomainClass::Removed));
        assert!(is_dark(DomainClass::Stale));
        assert!(!is_dark(DomainClass::Degraded));
        assert!(!is_dark(DomainClass::Authoritative));
    }
}
