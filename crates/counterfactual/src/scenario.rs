//! Failure-scenario enumeration: from a measured baseline dataset to
//! the set of counterfactual outages worth re-running the campaign
//! under.
//!
//! Four scenario families, mirroring the shared-infrastructure axes of
//! the paper's Table I:
//!
//! * [`ScenarioKind::Provider`] — a third-party DNS provider fails:
//!   every nameserver address whose hostname classifies to the provider
//!   goes dark.
//! * [`ScenarioKind::Asn`] — an autonomous system fails: every observed
//!   nameserver address inside the AS's allocations goes dark.
//! * [`ScenarioKind::Prefix`] — a /24 is withdrawn. The anycast model:
//!   a nameserver *hostname*'s addresses form one anycast service, so a
//!   prefix kill also takes out the sibling sites of any host with at
//!   least one address in the prefix (the origin behind them is gone).
//! * [`ScenarioKind::Cctld`] — a ccTLD registry fails: the parent-zone
//!   nameservers that delegate the country's government domains go
//!   dark, so *every* domain under the ccTLD loses its delegation path.
//!
//! Enumeration is a pure function of the baseline dataset plus public
//! classification knowledge (provider matchers, the prefix→ASN
//! database), so a seeded sweep always enumerates the same scenarios in
//! the same order.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use govdns_core::{MeasurementDataset, ScenarioSpec};
use govdns_simnet::{prefix24, AsnDb, Prefix24};
use govdns_world::ProviderMatcher;

/// The scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioKind {
    /// All nameservers operated by one third-party DNS provider fail.
    Provider,
    /// One autonomous system fails.
    Asn,
    /// One /24 prefix is withdrawn (plus anycast siblings).
    Prefix,
    /// One ccTLD registry fails.
    Cctld,
    /// Two single failures at once — the compound outage.
    Compound,
}

impl ScenarioKind {
    /// Stable wire/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioKind::Provider => "provider",
            ScenarioKind::Asn => "asn",
            ScenarioKind::Prefix => "prefix",
            ScenarioKind::Cctld => "cctld",
            ScenarioKind::Compound => "compound",
        }
    }

    /// Parses [`as_str`](Self::as_str) output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "provider" => ScenarioKind::Provider,
            "asn" => ScenarioKind::Asn,
            "prefix" => ScenarioKind::Prefix,
            "cctld" => ScenarioKind::Cctld,
            "compound" => ScenarioKind::Compound,
            _ => return None,
        })
    }

    /// Every kind, enumeration order.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::Provider,
            ScenarioKind::Asn,
            ScenarioKind::Prefix,
            ScenarioKind::Cctld,
            ScenarioKind::Compound,
        ]
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad`, not `write_str`: the report table relies on `{:<8}`.
        f.pad(self.as_str())
    }
}

/// A partial-outage dial: fail `k` of every `n` anycast sites.
///
/// `k == n` is the full outage; smaller `k` blackholes a hash-ranked
/// prefix of each site group, so the failed sets *nest* as the dial
/// turns — `(k+1)/n` always fails a superset of `k/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialDial {
    /// Sites failed per group of `n`.
    pub k: u32,
    /// Group size the dial is expressed against.
    pub n: u32,
}

impl PartialDial {
    /// Parses `"k/n"` (e.g. `"1/3"`). `n` must be at least 1 and `k`
    /// at most `n`.
    pub fn parse(s: &str) -> Option<Self> {
        let (k, n) = s.split_once('/')?;
        let (k, n) = (k.trim().parse().ok()?, n.trim().parse().ok()?);
        (n >= 1 && k <= n).then_some(PartialDial { k, n })
    }
}

impl std::fmt::Display for PartialDial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.k, self.n)
    }
}

/// One enumerated failure scenario: a destination set to hard-fail,
/// plus the bookkeeping the ranked report needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The family.
    pub kind: ScenarioKind,
    /// The failing subject: a provider label, `AS64500`, a /24 in CIDR
    /// notation, a ccTLD label, or `id+id` for compounds.
    pub subject: String,
    /// Individual addresses taken out.
    pub blackhole_addrs: BTreeSet<Ipv4Addr>,
    /// Whole /24s taken out.
    pub blackhole_prefixes: BTreeSet<Prefix24>,
    /// Individual addresses degraded (probabilistically dropped) rather
    /// than hard-failed. Populated by [`degraded`](Self::degraded).
    pub degraded_addrs: BTreeSet<Ipv4Addr>,
    /// Whole /24s degraded.
    pub degraded_prefixes: BTreeSet<Prefix24>,
    /// Drop rate for the degraded sets, parts per million.
    pub degrade_ppm: u32,
    /// Anycast site groups inside the blast set — one group per
    /// nameserver hostname, each the hostname's address set. The
    /// partial dial fails `k/n` of every group; empty means the whole
    /// blast set is treated as one group.
    pub site_groups: Vec<Vec<Ipv4Addr>>,
    /// The baseline domains behind [`candidate_domains`]
    /// (compound scenarios union these).
    ///
    /// [`candidate_domains`]: Self::candidate_domains
    pub candidates: BTreeSet<String>,
    /// Baseline domains with at least one nameserver (or, for ccTLD
    /// scenarios, their delegation path) inside the blast set.
    pub candidate_domains: usize,
}

impl Scenario {
    /// Stable scenario identifier, `kind:subject`.
    pub fn id(&self) -> String {
        format!("{}:{}", self.kind, self.subject)
    }

    /// Lowers the scenario into the runner's fault-layer spec.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            label: self.id(),
            blackhole_addrs: self.blackhole_addrs.iter().copied().collect(),
            blackhole_prefixes: self.blackhole_prefixes.iter().copied().collect(),
            degraded_addrs: self.degraded_addrs.iter().copied().collect(),
            degraded_prefixes: self.degraded_prefixes.iter().copied().collect(),
            degrade_ppm: self.degrade_ppm,
        }
    }

    /// Applies the partial dial: per site group, blackhole only the
    /// first `ceil(m·k/n)` addresses in the group's hash-ranked order
    /// (and likewise for the prefix set, ranked as one group). The
    /// ranking is a pure function of the addresses, so dialed blast
    /// sets nest as `k` grows. Subject becomes `{subject}~{k}of{n}`.
    #[must_use]
    pub fn dialed(&self, dial: PartialDial) -> Scenario {
        let groups: Vec<Vec<Ipv4Addr>> = if self.site_groups.is_empty() {
            vec![self.blackhole_addrs.iter().copied().collect()]
        } else {
            self.site_groups.clone()
        };
        let mut addrs = BTreeSet::new();
        let mut kept_groups = Vec::with_capacity(groups.len());
        for group in groups {
            let kept = dial_keep(&group, dial, |&a| u64::from(u32::from(a)));
            addrs.extend(kept.iter().copied());
            kept_groups.push(kept);
        }
        let prefixes: Vec<Prefix24> = self.blackhole_prefixes.iter().copied().collect();
        let kept_prefixes = dial_keep(&prefixes, dial, |p| u64::from(u32::from(p.network())));
        Scenario {
            subject: format!("{}~{}of{}", self.subject, dial.k, dial.n),
            blackhole_addrs: addrs,
            blackhole_prefixes: kept_prefixes.into_iter().collect(),
            site_groups: kept_groups,
            ..self.clone()
        }
    }

    /// Converts the hard blackhole into a probabilistic degradation at
    /// `ppm` parts per million. Subject becomes `{subject}~d{ppm}`.
    #[must_use]
    pub fn degraded(&self, ppm: u32) -> Scenario {
        Scenario {
            subject: format!("{}~d{ppm}", self.subject),
            blackhole_addrs: BTreeSet::new(),
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: self.blackhole_addrs.clone(),
            degraded_prefixes: self.blackhole_prefixes.clone(),
            degrade_ppm: ppm,
            ..self.clone()
        }
    }
}

/// The hash-ranked dial selection: sorts `items` by (FNV hash, value)
/// and keeps the first `ceil(len·k/n)`. The order never depends on
/// `k`, so selections nest: the kept set at `k` is a subset of the
/// kept set at `k+1`.
fn dial_keep<T: Copy>(items: &[T], dial: PartialDial, key: impl Fn(&T) -> u64) -> Vec<T> {
    let mut ranked: Vec<(u64, u64, T)> = items
        .iter()
        .map(|it| {
            let k = key(it);
            (fnv64(&k.to_be_bytes()), k, *it)
        })
        .collect();
    ranked.sort_by_key(|a| (a.0, a.1));
    let m = items.len() as u64;
    let keep =
        m.saturating_mul(u64::from(dial.k)).div_ceil(u64::from(dial.n).max(1)).min(m) as usize;
    ranked.truncate(keep);
    ranked.into_iter().map(|(_, _, it)| it).collect()
}

/// FNV-1a, 64-bit — the dial's site-ranking hash.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Enumeration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationConfig {
    /// Keep at most this many scenarios per kind, ranked by candidate
    /// domains (descending), subject as the tiebreak. `0` keeps all.
    pub max_per_kind: usize,
    /// Also enumerate compound (two-at-once) scenarios, composed from
    /// the capped singles: provider×provider, provider×ccTLD, and
    /// provider×prefix pairs, each pair-kind capped at `max_per_kind`.
    pub compound: bool,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig { max_per_kind: 6, compound: false }
    }
}

/// Enumerates every failure scenario implied by a measured baseline,
/// capped per [`EnumerationConfig`], in a deterministic order
/// (provider, ASN, prefix, ccTLD, then compounds; within a kind by
/// blast size).
pub fn enumerate_scenarios(
    dataset: &MeasurementDataset,
    matchers: &[ProviderMatcher],
    asn_db: &AsnDb,
    config: EnumerationConfig,
) -> Vec<Scenario> {
    let mut out = Vec::new();
    out.extend(cap(provider_scenarios(dataset, matchers), config.max_per_kind));
    out.extend(cap(asn_scenarios(dataset, asn_db), config.max_per_kind));
    out.extend(cap(prefix_scenarios(dataset), config.max_per_kind));
    out.extend(cap(cctld_scenarios(dataset), config.max_per_kind));
    if config.compound {
        let compounds = compound_scenarios(&out, config.max_per_kind);
        out.extend(compounds);
    }
    out
}

/// Composes compound (two-at-once) scenarios from the enumerated
/// singles. Three pair kinds, in fixed order: provider×provider (two
/// providers fail together), provider×ccTLD (a provider *and* the
/// registry), provider×prefix (a provider plus a withdrawn /24). Each
/// pair-kind is capped at `max_per_pair` (0 = all), ranked like
/// singles: candidate-union size descending, then subject.
///
/// A compound's blast set is the union of its parts, so by
/// construction it darkens at least the union of what its components
/// darken alone.
pub fn compound_scenarios(singles: &[Scenario], max_per_pair: usize) -> Vec<Scenario> {
    let of_kind =
        |k: ScenarioKind| -> Vec<&Scenario> { singles.iter().filter(|s| s.kind == k).collect() };
    let providers = of_kind(ScenarioKind::Provider);
    let cctlds = of_kind(ScenarioKind::Cctld);
    let prefixes = of_kind(ScenarioKind::Prefix);

    let mut out = Vec::new();
    let mut pairs: Vec<(&Scenario, &Scenario)> = Vec::new();
    for (i, a) in providers.iter().enumerate() {
        for b in &providers[i + 1..] {
            pairs.push((a, b));
        }
    }
    out.extend(cap(pairs.drain(..).map(|(a, b)| compose(a, b)).collect(), max_per_pair));
    for &a in &providers {
        for &b in &cctlds {
            pairs.push((a, b));
        }
    }
    out.extend(cap(pairs.drain(..).map(|(a, b)| compose(a, b)).collect(), max_per_pair));
    for &a in &providers {
        for &b in &prefixes {
            pairs.push((a, b));
        }
    }
    out.extend(cap(pairs.drain(..).map(|(a, b)| compose(a, b)).collect(), max_per_pair));
    out
}

/// One compound scenario: the union of two singles' blast sets.
fn compose(a: &Scenario, b: &Scenario) -> Scenario {
    let candidates: BTreeSet<String> = a.candidates.union(&b.candidates).cloned().collect();
    let mut site_groups = a.site_groups.clone();
    site_groups.extend(b.site_groups.iter().cloned());
    Scenario {
        kind: ScenarioKind::Compound,
        subject: format!("{}+{}", a.id(), b.id()),
        blackhole_addrs: a.blackhole_addrs.union(&b.blackhole_addrs).copied().collect(),
        blackhole_prefixes: a.blackhole_prefixes.union(&b.blackhole_prefixes).copied().collect(),
        degraded_addrs: BTreeSet::new(),
        degraded_prefixes: BTreeSet::new(),
        degrade_ppm: 0,
        site_groups,
        candidate_domains: candidates.len(),
        candidates,
    }
}

/// Keeps the `n` largest scenarios of one kind (all of them when `n` is
/// zero), ordered by candidate-domain count descending, then subject.
fn cap(mut scenarios: Vec<Scenario>, n: usize) -> Vec<Scenario> {
    scenarios.sort_by(|a, b| {
        b.candidate_domains.cmp(&a.candidate_domains).then_with(|| a.subject.cmp(&b.subject))
    });
    if n > 0 {
        scenarios.truncate(n);
    }
    scenarios
}

fn provider_scenarios(dataset: &MeasurementDataset, matchers: &[ProviderMatcher]) -> Vec<Scenario> {
    // label → (addrs, candidate domains, host → anycast address set)
    type Group = (BTreeSet<Ipv4Addr>, BTreeSet<String>, BTreeMap<String, BTreeSet<Ipv4Addr>>);
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for probe in &dataset.probes {
        for server in &probe.servers {
            let Some(m) = matchers.iter().find(|m| m.matches(&server.host)) else { continue };
            let entry = groups.entry(m.label.clone()).or_default();
            entry.0.extend(server.addrs.iter().copied());
            entry.1.insert(probe.domain.to_string());
            entry.2.entry(server.host.to_string()).or_default().extend(server.addrs.iter());
        }
    }
    groups
        .into_iter()
        .filter(|(_, (addrs, _, _))| !addrs.is_empty())
        .map(|(label, (addrs, domains, hosts))| Scenario {
            kind: ScenarioKind::Provider,
            subject: label,
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: hosts.into_values().map(|g| g.into_iter().collect()).collect(),
            candidate_domains: domains.len(),
            candidates: domains,
        })
        .collect()
}

fn asn_scenarios(dataset: &MeasurementDataset, asn_db: &AsnDb) -> Vec<Scenario> {
    let mut groups: BTreeMap<u32, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        for addr in probe.ns_addrs() {
            let Some(asn) = asn_db.lookup(addr) else { continue };
            let entry = groups.entry(asn).or_default();
            entry.0.insert(addr);
            entry.1.insert(probe.domain.to_string());
        }
    }
    groups
        .into_iter()
        .map(|(asn, (addrs, domains))| Scenario {
            kind: ScenarioKind::Asn,
            subject: format!("AS{asn}"),
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: Vec::new(),
            candidate_domains: domains.len(),
            candidates: domains,
        })
        .collect()
}

fn prefix_scenarios(dataset: &MeasurementDataset) -> Vec<Scenario> {
    // prefix → (anycast-sibling addrs outside the prefix, candidates)
    let mut groups: BTreeMap<Prefix24, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        for server in &probe.servers {
            for &addr in &server.addrs {
                let p = prefix24(addr);
                let entry = groups.entry(p).or_default();
                // The host is one anycast service: a site in this
                // prefix dying means the origin behind every sibling
                // address of the same host is gone too.
                entry.0.extend(server.addrs.iter().copied().filter(|&a| prefix24(a) != p));
                entry.1.insert(probe.domain.to_string());
            }
        }
    }
    groups
        .into_iter()
        .map(|(p, (siblings, domains))| Scenario {
            kind: ScenarioKind::Prefix,
            subject: p.to_string(),
            blackhole_addrs: siblings,
            blackhole_prefixes: BTreeSet::from([p]),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: Vec::new(),
            candidate_domains: domains.len(),
            candidates: domains,
        })
        .collect()
}

fn cctld_scenarios(dataset: &MeasurementDataset) -> Vec<Scenario> {
    let mut groups: BTreeMap<String, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        let labels = probe.domain.labels();
        let Some(tld) = labels.last() else { continue };
        let entry = groups.entry(tld.as_str().to_owned()).or_default();
        entry.0.extend(probe.parent_addrs.iter().copied());
        entry.1.insert(probe.domain.to_string());
    }
    groups
        .into_iter()
        .filter(|(_, (addrs, _))| !addrs.is_empty())
        .map(|(tld, (addrs, domains))| Scenario {
            kind: ScenarioKind::Cctld,
            subject: tld,
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: Vec::new(),
            candidate_domains: domains.len(),
            candidates: domains,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(kind: ScenarioKind, subject: &str, candidates: usize) -> Scenario {
        Scenario {
            kind,
            subject: subject.to_owned(),
            blackhole_addrs: BTreeSet::new(),
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: Vec::new(),
            candidates: (0..candidates).map(|i| format!("d{i}.gov.zz")).collect(),
            candidate_domains: candidates,
        }
    }

    fn with_addrs(mut s: Scenario, addrs: &[[u8; 4]]) -> Scenario {
        s.blackhole_addrs = addrs.iter().map(|o| Ipv4Addr::from(*o)).collect();
        s
    }

    #[test]
    fn ids_are_kind_prefixed() {
        assert_eq!(
            scenario(ScenarioKind::Provider, "cloudflare.com", 1).id(),
            "provider:cloudflare.com"
        );
        assert_eq!(scenario(ScenarioKind::Asn, "AS64500", 1).id(), "asn:AS64500");
    }

    #[test]
    fn kind_labels_roundtrip() {
        for k in ScenarioKind::all() {
            assert_eq!(ScenarioKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("meteor"), None);
    }

    #[test]
    fn cap_orders_by_blast_then_subject() {
        let capped = cap(
            vec![
                scenario(ScenarioKind::Asn, "AS3", 1),
                scenario(ScenarioKind::Asn, "AS2", 5),
                scenario(ScenarioKind::Asn, "AS1", 5),
            ],
            2,
        );
        let subjects: Vec<&str> = capped.iter().map(|s| s.subject.as_str()).collect();
        assert_eq!(subjects, ["AS1", "AS2"]);
    }

    #[test]
    fn cap_zero_keeps_all() {
        assert_eq!(
            cap((0..9).map(|i| scenario(ScenarioKind::Cctld, &format!("t{i}"), i)).collect(), 0)
                .len(),
            9
        );
    }

    #[test]
    fn partial_dial_parses_and_rejects() {
        assert_eq!(PartialDial::parse("1/3"), Some(PartialDial { k: 1, n: 3 }));
        assert_eq!(PartialDial::parse("3/3"), Some(PartialDial { k: 3, n: 3 }));
        assert_eq!(PartialDial::parse("0/4"), Some(PartialDial { k: 0, n: 4 }));
        assert_eq!(PartialDial::parse("4/3"), None, "k must not exceed n");
        assert_eq!(PartialDial::parse("1/0"), None);
        assert_eq!(PartialDial::parse("13"), None);
    }

    #[test]
    fn dialed_blast_sets_nest_as_the_dial_turns() {
        let base = with_addrs(
            scenario(ScenarioKind::Provider, "bigdns", 4),
            &[[10, 1, 0, 1], [10, 2, 0, 1], [10, 3, 0, 1], [10, 4, 0, 1], [10, 5, 0, 1]],
        );
        let mut prev = BTreeSet::new();
        for k in 0..=5 {
            let dialed = base.dialed(PartialDial { k, n: 5 });
            assert!(
                dialed.blackhole_addrs.is_superset(&prev),
                "k={k}: {:?} not ⊇ {prev:?}",
                dialed.blackhole_addrs
            );
            prev = dialed.blackhole_addrs;
        }
        assert_eq!(prev, base.blackhole_addrs, "k=n is the full outage");
        assert_eq!(base.dialed(PartialDial { k: 0, n: 5 }).blackhole_addrs.len(), 0);
        assert_eq!(base.dialed(PartialDial { k: 2, n: 5 }).subject, "bigdns~2of5");
    }

    #[test]
    fn dial_respects_site_groups() {
        let mut base = with_addrs(
            scenario(ScenarioKind::Provider, "bigdns", 2),
            &[[10, 1, 0, 1], [10, 1, 0, 2], [10, 2, 0, 1], [10, 2, 0, 2]],
        );
        base.site_groups = vec![
            vec![Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 0, 2)],
            vec![Ipv4Addr::new(10, 2, 0, 1), Ipv4Addr::new(10, 2, 0, 2)],
        ];
        let half = base.dialed(PartialDial { k: 1, n: 2 });
        // ceil(2·1/2) = 1 address failed per group — every hostname
        // keeps one live site.
        assert_eq!(half.blackhole_addrs.len(), 2);
        for group in &base.site_groups {
            let hit = group.iter().filter(|a| half.blackhole_addrs.contains(a)).count();
            assert_eq!(hit, 1, "exactly one site per group fails");
        }
    }

    #[test]
    fn degraded_moves_the_blast_into_the_degrade_sets() {
        let base = with_addrs(scenario(ScenarioKind::Provider, "bigdns", 1), &[[10, 1, 0, 1]]);
        let d = base.degraded(250_000);
        assert!(d.blackhole_addrs.is_empty());
        assert_eq!(d.degraded_addrs, base.blackhole_addrs);
        assert_eq!(d.degrade_ppm, 250_000);
        assert_eq!(d.subject, "bigdns~d250000");
        assert_eq!(d.id(), "provider:bigdns~d250000");
        let spec = d.spec();
        assert!(!spec.is_empty());
        assert_eq!(spec.degrade_ppm, 250_000);
    }

    #[test]
    fn compounds_union_blasts_and_candidates() {
        let a = with_addrs(scenario(ScenarioKind::Provider, "alpha", 3), &[[10, 1, 0, 1]]);
        let b = with_addrs(scenario(ScenarioKind::Provider, "beta", 2), &[[10, 2, 0, 1]]);
        let mut c = with_addrs(scenario(ScenarioKind::Cctld, "zz", 2), &[[10, 9, 0, 1]]);
        c.candidates = ["d9.gov.zz".to_owned(), "d0.gov.zz".to_owned()].into();
        c.candidate_domains = 2;
        let singles = vec![a.clone(), b.clone(), c.clone()];
        let compounds = compound_scenarios(&singles, 0);
        // one provider pair + two provider×cctld pairs
        assert_eq!(compounds.len(), 3);
        let pp = compounds.iter().find(|s| s.subject.contains("alpha+provider:beta")).unwrap();
        assert_eq!(pp.kind, ScenarioKind::Compound);
        assert_eq!(pp.id(), "compound:provider:alpha+provider:beta");
        assert!(pp.blackhole_addrs.is_superset(&a.blackhole_addrs));
        assert!(pp.blackhole_addrs.is_superset(&b.blackhole_addrs));
        assert_eq!(pp.candidate_domains, 3, "candidate union, not sum");
        let pc = compounds.iter().find(|s| s.subject == "provider:alpha+cctld:zz").unwrap();
        assert_eq!(pc.candidate_domains, 4, "d0 overlaps, d9 is new");
    }

    #[test]
    fn compound_pair_kinds_are_capped_independently() {
        let singles: Vec<Scenario> = (0..4)
            .map(|i| {
                with_addrs(
                    scenario(ScenarioKind::Provider, &format!("p{i}"), 4 - i),
                    &[[10, i as u8, 0, 1]],
                )
            })
            .collect();
        // 4 providers → 6 possible pairs, capped to 2.
        assert_eq!(compound_scenarios(&singles, 2).len(), 2);
    }
}
