//! Failure-scenario enumeration: from a measured baseline dataset to
//! the set of counterfactual outages worth re-running the campaign
//! under.
//!
//! Four scenario families, mirroring the shared-infrastructure axes of
//! the paper's Table I:
//!
//! * [`ScenarioKind::Provider`] — a third-party DNS provider fails:
//!   every nameserver address whose hostname classifies to the provider
//!   goes dark.
//! * [`ScenarioKind::Asn`] — an autonomous system fails: every observed
//!   nameserver address inside the AS's allocations goes dark.
//! * [`ScenarioKind::Prefix`] — a /24 is withdrawn. The anycast model:
//!   a nameserver *hostname*'s addresses form one anycast service, so a
//!   prefix kill also takes out the sibling sites of any host with at
//!   least one address in the prefix (the origin behind them is gone).
//! * [`ScenarioKind::Cctld`] — a ccTLD registry fails: the parent-zone
//!   nameservers that delegate the country's government domains go
//!   dark, so *every* domain under the ccTLD loses its delegation path.
//!
//! Enumeration is a pure function of the baseline dataset plus public
//! classification knowledge (provider matchers, the prefix→ASN
//! database), so a seeded sweep always enumerates the same scenarios in
//! the same order.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use govdns_core::{MeasurementDataset, ScenarioSpec};
use govdns_simnet::{prefix24, AsnDb, Prefix24};
use govdns_world::ProviderMatcher;

/// The scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScenarioKind {
    /// All nameservers operated by one third-party DNS provider fail.
    Provider,
    /// One autonomous system fails.
    Asn,
    /// One /24 prefix is withdrawn (plus anycast siblings).
    Prefix,
    /// One ccTLD registry fails.
    Cctld,
}

impl ScenarioKind {
    /// Stable wire/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioKind::Provider => "provider",
            ScenarioKind::Asn => "asn",
            ScenarioKind::Prefix => "prefix",
            ScenarioKind::Cctld => "cctld",
        }
    }

    /// Parses [`as_str`](Self::as_str) output.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "provider" => ScenarioKind::Provider,
            "asn" => ScenarioKind::Asn,
            "prefix" => ScenarioKind::Prefix,
            "cctld" => ScenarioKind::Cctld,
            _ => return None,
        })
    }

    /// Every kind, enumeration order.
    pub fn all() -> [ScenarioKind; 4] {
        [ScenarioKind::Provider, ScenarioKind::Asn, ScenarioKind::Prefix, ScenarioKind::Cctld]
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad`, not `write_str`: the report table relies on `{:<8}`.
        f.pad(self.as_str())
    }
}

/// One enumerated failure scenario: a destination set to hard-fail,
/// plus the bookkeeping the ranked report needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// The family.
    pub kind: ScenarioKind,
    /// The failing subject: a provider label, `AS64500`, a /24 in CIDR
    /// notation, or a ccTLD label.
    pub subject: String,
    /// Individual addresses taken out.
    pub blackhole_addrs: BTreeSet<Ipv4Addr>,
    /// Whole /24s taken out.
    pub blackhole_prefixes: BTreeSet<Prefix24>,
    /// Baseline domains with at least one nameserver (or, for ccTLD
    /// scenarios, their delegation path) inside the blast set.
    pub candidate_domains: usize,
}

impl Scenario {
    /// Stable scenario identifier, `kind:subject`.
    pub fn id(&self) -> String {
        format!("{}:{}", self.kind, self.subject)
    }

    /// Lowers the scenario into the runner's fault-layer spec.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            label: self.id(),
            blackhole_addrs: self.blackhole_addrs.iter().copied().collect(),
            blackhole_prefixes: self.blackhole_prefixes.iter().copied().collect(),
        }
    }
}

/// Enumeration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationConfig {
    /// Keep at most this many scenarios per kind, ranked by candidate
    /// domains (descending), subject as the tiebreak. `0` keeps all.
    pub max_per_kind: usize,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig { max_per_kind: 6 }
    }
}

/// Enumerates every failure scenario implied by a measured baseline,
/// capped per [`EnumerationConfig`], in a deterministic order
/// (provider, ASN, prefix, ccTLD; within a kind by blast size).
pub fn enumerate_scenarios(
    dataset: &MeasurementDataset,
    matchers: &[ProviderMatcher],
    asn_db: &AsnDb,
    config: EnumerationConfig,
) -> Vec<Scenario> {
    let mut out = Vec::new();
    out.extend(cap(provider_scenarios(dataset, matchers), config.max_per_kind));
    out.extend(cap(asn_scenarios(dataset, asn_db), config.max_per_kind));
    out.extend(cap(prefix_scenarios(dataset), config.max_per_kind));
    out.extend(cap(cctld_scenarios(dataset), config.max_per_kind));
    out
}

/// Keeps the `n` largest scenarios of one kind (all of them when `n` is
/// zero), ordered by candidate-domain count descending, then subject.
fn cap(mut scenarios: Vec<Scenario>, n: usize) -> Vec<Scenario> {
    scenarios.sort_by(|a, b| {
        b.candidate_domains.cmp(&a.candidate_domains).then_with(|| a.subject.cmp(&b.subject))
    });
    if n > 0 {
        scenarios.truncate(n);
    }
    scenarios
}

fn provider_scenarios(dataset: &MeasurementDataset, matchers: &[ProviderMatcher]) -> Vec<Scenario> {
    // label → (addrs, candidate domains)
    let mut groups: BTreeMap<String, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        for server in &probe.servers {
            let Some(m) = matchers.iter().find(|m| m.matches(&server.host)) else { continue };
            let entry = groups.entry(m.label.clone()).or_default();
            entry.0.extend(server.addrs.iter().copied());
            entry.1.insert(probe.domain.to_string());
        }
    }
    groups
        .into_iter()
        .filter(|(_, (addrs, _))| !addrs.is_empty())
        .map(|(label, (addrs, domains))| Scenario {
            kind: ScenarioKind::Provider,
            subject: label,
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            candidate_domains: domains.len(),
        })
        .collect()
}

fn asn_scenarios(dataset: &MeasurementDataset, asn_db: &AsnDb) -> Vec<Scenario> {
    let mut groups: BTreeMap<u32, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        for addr in probe.ns_addrs() {
            let Some(asn) = asn_db.lookup(addr) else { continue };
            let entry = groups.entry(asn).or_default();
            entry.0.insert(addr);
            entry.1.insert(probe.domain.to_string());
        }
    }
    groups
        .into_iter()
        .map(|(asn, (addrs, domains))| Scenario {
            kind: ScenarioKind::Asn,
            subject: format!("AS{asn}"),
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            candidate_domains: domains.len(),
        })
        .collect()
}

fn prefix_scenarios(dataset: &MeasurementDataset) -> Vec<Scenario> {
    // prefix → (anycast-sibling addrs outside the prefix, candidates)
    let mut groups: BTreeMap<Prefix24, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        for server in &probe.servers {
            for &addr in &server.addrs {
                let p = prefix24(addr);
                let entry = groups.entry(p).or_default();
                // The host is one anycast service: a site in this
                // prefix dying means the origin behind every sibling
                // address of the same host is gone too.
                entry.0.extend(server.addrs.iter().copied().filter(|&a| prefix24(a) != p));
                entry.1.insert(probe.domain.to_string());
            }
        }
    }
    groups
        .into_iter()
        .map(|(p, (siblings, domains))| Scenario {
            kind: ScenarioKind::Prefix,
            subject: p.to_string(),
            blackhole_addrs: siblings,
            blackhole_prefixes: BTreeSet::from([p]),
            candidate_domains: domains.len(),
        })
        .collect()
}

fn cctld_scenarios(dataset: &MeasurementDataset) -> Vec<Scenario> {
    let mut groups: BTreeMap<String, (BTreeSet<Ipv4Addr>, BTreeSet<String>)> = BTreeMap::new();
    for probe in &dataset.probes {
        let labels = probe.domain.labels();
        let Some(tld) = labels.last() else { continue };
        let entry = groups.entry(tld.as_str().to_owned()).or_default();
        entry.0.extend(probe.parent_addrs.iter().copied());
        entry.1.insert(probe.domain.to_string());
    }
    groups
        .into_iter()
        .filter(|(_, (addrs, _))| !addrs.is_empty())
        .map(|(tld, (addrs, domains))| Scenario {
            kind: ScenarioKind::Cctld,
            subject: tld,
            blackhole_addrs: addrs,
            blackhole_prefixes: BTreeSet::new(),
            candidate_domains: domains.len(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(kind: ScenarioKind, subject: &str, candidates: usize) -> Scenario {
        Scenario {
            kind,
            subject: subject.to_owned(),
            blackhole_addrs: BTreeSet::new(),
            blackhole_prefixes: BTreeSet::new(),
            candidate_domains: candidates,
        }
    }

    #[test]
    fn ids_are_kind_prefixed() {
        assert_eq!(
            scenario(ScenarioKind::Provider, "cloudflare.com", 1).id(),
            "provider:cloudflare.com"
        );
        assert_eq!(scenario(ScenarioKind::Asn, "AS64500", 1).id(), "asn:AS64500");
    }

    #[test]
    fn kind_labels_roundtrip() {
        for k in ScenarioKind::all() {
            assert_eq!(ScenarioKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ScenarioKind::parse("meteor"), None);
    }

    #[test]
    fn cap_orders_by_blast_then_subject() {
        let capped = cap(
            vec![
                scenario(ScenarioKind::Asn, "AS3", 1),
                scenario(ScenarioKind::Asn, "AS2", 5),
                scenario(ScenarioKind::Asn, "AS1", 5),
            ],
            2,
        );
        let subjects: Vec<&str> = capped.iter().map(|s| s.subject.as_str()).collect();
        assert_eq!(subjects, ["AS1", "AS2"]);
    }

    #[test]
    fn cap_zero_keeps_all() {
        assert_eq!(
            cap((0..9).map(|i| scenario(ScenarioKind::Cctld, &format!("t{i}"), i)).collect(), 0)
                .len(),
            9
        );
    }
}
