//! The sweep engine: baseline campaign → scenario enumeration →
//! parallel counterfactual re-runs → ranked SPOF report.
//!
//! **Isolation.** A `SimNetwork` hosts one fault plan and accumulates
//! per-destination ordinals, so concurrent campaigns cannot share one.
//! Every scenario therefore regenerates its own world from the same
//! seed (generation is deterministic, so every scenario probes the
//! *same* internet minus its blast set) and runs a self-contained
//! campaign against it. Scenarios are embarrassingly parallel; the
//! sweep fans them out over `workers` threads.
//!
//! **Determinism.** Inner campaigns run single-worker with the
//! worker-count-invariant configuration (no breakers, unlimited retry
//! budget), and every scenario outcome is keyed back to its enumeration
//! index before ranking — so the report's `canonical_json()` is
//! byte-identical at any sweep worker count.
//!
//! **Crash safety.** With a journal directory configured, each scenario
//! campaign write-ahead-journals into `<dir>/<scenario-id>.journal` and
//! resumes from it when the file already exists — the same machinery as
//! a normal campaign, one journal per scenario.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use govdns_core::{
    run_campaign, BreakerPolicy, Campaign, JournalSpec, MeasurementDataset, RetryPolicy,
    RunnerConfig,
};
use govdns_diff::DatasetView;
use govdns_world::{World, WorldConfig, WorldGenerator};

use crate::recovery::{simulate_recovery, RecoveryConfig, RecoveryEntry};
use crate::scenario::{enumerate_scenarios, EnumerationConfig, PartialDial, Scenario};
use crate::spof::{is_dark, Darkened, SpofEntry, SpofReport};

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// World seed (baseline and every scenario regenerate from it).
    pub seed: u64,
    /// World scale, parts-per-million of paper scale.
    pub scale_ppm: u64,
    /// Scenario-level parallelism (inner campaigns are single-worker;
    /// this only affects wall-clock, never the report bytes).
    pub workers: usize,
    /// Scenario enumeration knobs.
    pub enumeration: EnumerationConfig,
    /// Only run scenarios whose id contains this substring.
    pub scenario_filter: Option<String>,
    /// Write-ahead journal directory: one `<scenario-id>.journal` per
    /// scenario, resumed from when present.
    pub journal_dir: Option<PathBuf>,
    /// Partial-outage dial: fail only `k/n` of every scenario's
    /// anycast sites instead of the whole blast set.
    pub partial: Option<PartialDial>,
    /// Degraded mode: convert every scenario's hard blackhole into a
    /// probabilistic drop at this rate (parts per million).
    pub degrade_ppm: Option<u32>,
    /// TTL-driven recovery modeling: replay each scenario's outage
    /// through a caching resolver and report per-domain time-to-dark /
    /// time-to-recover.
    pub recovery: Option<RecoveryConfig>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 7,
            scale_ppm: 10_000,
            workers: 1,
            enumeration: EnumerationConfig::default(),
            scenario_filter: None,
            journal_dir: None,
            partial: None,
            degrade_ppm: None,
            recovery: None,
        }
    }
}

impl SweepConfig {
    fn generate_world(&self) -> World {
        let scale = self.scale_ppm as f64 / 1_000_000.0;
        WorldGenerator::new(WorldConfig::small(self.seed).with_scale(scale)).generate()
    }

    /// The worker-count-invariant inner campaign configuration: one
    /// worker, adaptive retries with no per-destination budget, no
    /// chaos, no breakers — plus the scenario layer under test.
    fn runner_config(&self, scenario: Option<&Scenario>) -> RunnerConfig {
        let journal = match (&self.journal_dir, scenario) {
            (Some(dir), Some(s)) => {
                Some(JournalSpec::new(dir.join(format!("{}.journal", sanitize(&s.id())))))
            }
            _ => None,
        };
        let resume_from =
            journal.as_ref().map(|spec| spec.path.clone()).filter(|path| path.exists());
        RunnerConfig {
            workers: 1,
            retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
            chaos: None,
            scenario: scenario.map(Scenario::spec),
            breaker: BreakerPolicy::none(),
            journal,
            resume_from,
            ..RunnerConfig::default()
        }
    }
}

/// A scenario-id-derived filename: alphanumerics, dots, and dashes
/// survive; everything else becomes a dash.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '-' })
        .collect()
}

/// Runs the baseline campaign, enumerates scenarios, re-runs the
/// campaign under each, and ranks the outcomes.
///
/// # Panics
///
/// Panics on journal I/O failure or when a scenario's journal belongs
/// to a different campaign or config.
pub fn run_sweep(config: &SweepConfig) -> SpofReport {
    let baseline_world = config.generate_world();
    let matchers = baseline_world.catalog.matchers();
    let campaign = Campaign::new(&baseline_world, &matchers);
    let baseline = run_campaign(&campaign, config.runner_config(None));
    let baseline_view = DatasetView::from_dataset(&baseline);

    let mut scenarios =
        enumerate_scenarios(&baseline, &matchers, &baseline_world.asn_db, config.enumeration);
    if let Some(filter) = &config.scenario_filter {
        scenarios.retain(|s| s.id().contains(filter.as_str()));
    }
    // Degraded-mode transforms, applied after the filter so the filter
    // matches the undecorated ids: the partial dial shrinks each blast
    // set to `k/n` of its sites, the degrade conversion swaps the hard
    // blackhole for a probabilistic drop. Both rewrite the subject, so
    // per-scenario journals never collide with the full-outage runs.
    if let Some(dial) = config.partial {
        scenarios = scenarios.iter().map(|s| s.dialed(dial)).collect();
    }
    if let Some(ppm) = config.degrade_ppm {
        scenarios = scenarios.iter().map(|s| s.degraded(ppm)).collect();
    }

    let countries = country_map(&baseline);
    if let Some(dir) = &config.journal_dir {
        std::fs::create_dir_all(dir).expect("create journal directory");
    }

    type Outcome = (SpofEntry, Option<RecoveryEntry>);
    let results: Vec<Mutex<Option<Outcome>>> = scenarios.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = config.workers.clamp(1, scenarios.len().max(1));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(scenario) = scenarios.get(i) else { break };
                // A fresh world per scenario: same seed, same internet,
                // nothing shared with sibling campaigns.
                let world = config.generate_world();
                let matchers = world.catalog.matchers();
                let campaign = Campaign::new(&world, &matchers);
                let dataset = run_campaign(&campaign, config.runner_config(Some(scenario)));
                let entry = score_scenario(scenario, &baseline_view, &dataset, &countries);
                // Recovery replays the outage through a caching
                // resolver over the domains this scenario darkened —
                // a fresh world again (the campaign's network still
                // has the fault plan installed and its accounting is
                // not part of the timeline model).
                let recovery = config.recovery.map(|cfg| {
                    let world = config.generate_world();
                    let track: Vec<(String, String)> = entry
                        .darkened
                        .iter()
                        .map(|d| (d.domain.clone(), d.country.clone()))
                        .collect();
                    simulate_recovery(&world, scenario, cfg, &track)
                });
                *results[i].lock() = Some((entry, recovery));
            });
        }
    })
    .expect("sweep workers do not panic");

    let (entries, recovery): (Vec<SpofEntry>, Vec<Option<RecoveryEntry>>) = results
        .into_iter()
        .map(|slot| slot.into_inner().expect("every scenario was swept"))
        .unzip();
    SpofReport {
        seed: config.seed,
        scale_ppm: config.scale_ppm,
        baseline_domains: baseline_view.rows.len(),
        baseline_dark: baseline_view.rows.values().filter(|r| is_dark(r.class)).count(),
        entries,
        // `ranked()` re-threads these onto the ranked scenario order.
        recovery: recovery.into_iter().flatten().collect(),
    }
    .ranked()
}

/// Domain → country attribution, from the baseline's discovery stage.
fn country_map(baseline: &MeasurementDataset) -> BTreeMap<String, String> {
    baseline
        .discovered
        .iter()
        .map(|d| (d.name.to_string(), d.country.as_str().to_owned()))
        .collect()
}

/// Scores one scenario run against the baseline: class transitions via
/// the diff engine, darkened = resolvable → dark.
fn score_scenario(
    scenario: &Scenario,
    baseline_view: &DatasetView,
    dataset: &MeasurementDataset,
    countries: &BTreeMap<String, String>,
) -> SpofEntry {
    let view = DatasetView::from_dataset(dataset);
    let diff = baseline_view.diff(&view);
    let mut darkened: Vec<Darkened> = diff
        .transitions
        .iter()
        .filter(|t| !is_dark(t.from) && is_dark(t.to))
        .map(|t| Darkened {
            domain: t.domain.clone(),
            country: countries.get(&t.domain).cloned().unwrap_or_default(),
            from: t.from,
            to: t.to,
        })
        .collect();
    darkened.sort_by(|a, b| a.domain.cmp(&b.domain));
    let country_set: std::collections::BTreeSet<String> =
        darkened.iter().map(|d| d.country.clone()).collect();
    SpofEntry {
        id: scenario.id(),
        kind: scenario.kind,
        subject: scenario.subject.clone(),
        blast_addrs: scenario.blackhole_addrs.len(),
        blast_prefixes: scenario.blackhole_prefixes.len(),
        candidate_domains: scenario.candidate_domains,
        domains_darkened: darkened.len(),
        countries_darkened: country_set.len(),
        countries: country_set.into_iter().collect(),
        darkened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_only() {
        assert_eq!(sanitize("provider:ns.cloudflare.com"), "provider-ns.cloudflare.com");
        assert_eq!(sanitize("prefix:10.1.2.0/24"), "prefix-10.1.2.0-24");
        assert_eq!(sanitize("asn:AS64500"), "asn-AS64500");
    }

    #[test]
    fn default_config_is_single_worker_invariant_shape() {
        let cfg = SweepConfig::default();
        let rc = cfg.runner_config(None);
        assert_eq!(rc.workers, 1);
        assert!(rc.chaos.is_none());
        assert!(rc.journal.is_none());
        assert_eq!(rc.retry.per_destination_budget, None);
    }
}
