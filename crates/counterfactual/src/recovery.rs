//! TTL-driven recovery modeling: how long a domain *stays* resolvable
//! into an outage on cache warmth alone, and how quickly it comes back
//! once the infrastructure returns.
//!
//! The campaign measures an outage's steady state (caches cold, every
//! query hits the blast set). Real outages are experienced through
//! resolver caches: a domain with freshly-cached NS and A records keeps
//! answering until the records' TTLs run out — *time to dark* — and a
//! recovering domain stays dark for as long as negative caching holds
//! its failures — *time to recover*.
//!
//! The model replays exactly that against the simulated internet:
//!
//! 1. **Warm-up** (virtual time 0, healthy network): resolve each
//!    tracked domain's NS set and the nameserver hosts' A records
//!    through a [`StubResolver`] with RFC 2308 negative caching on.
//! 2. **Outage**: install the scenario's fault plan and advance the
//!    resolver's virtual clock across the outage window in fixed
//!    steps, re-checking liveness at each sample. A domain goes dark
//!    at the first sample where its delegation no longer resolves —
//!    i.e. when cache warmth has drained.
//! 3. **Recovery**: lift the outage at the end of the window and keep
//!    sampling; a darkened domain has recovered at the first sample
//!    where resolution succeeds again (negative-cache holds push this
//!    past the lift).
//!
//! Everything is a pure function of (world seed, scenario, window,
//! step): domains are visited in sorted order on a single thread, so
//! the per-domain timelines are byte-stable at any sweep worker count.

use std::str::FromStr;

use govdns_core::Campaign;
use govdns_model::{DomainName, RecordType};
use govdns_simnet::{FaultPlan, StubResolver};
use govdns_world::World;

use crate::scenario::Scenario;

/// Recovery-sweep knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Outage duration, virtual seconds. The default outlives the
    /// world's standard 3600-second TTLs, so warm caches drain inside
    /// the window.
    pub window_s: u64,
    /// Sample cadence, virtual seconds.
    pub step_s: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { window_s: 7200, step_s: 60 }
    }
}

/// How far past the outage lift the model keeps sampling domains that
/// have not yet recovered.
const RECOVERY_TAIL_CAP_S: u64 = 7200;

/// One domain's outage timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRecovery {
    /// The domain.
    pub domain: String,
    /// The country whose government it belongs to.
    pub country: String,
    /// Virtual seconds into the outage at which the domain first
    /// failed to resolve (`None` = cache warmth outlived the window).
    pub dark_at_s: Option<u64>,
    /// Virtual seconds after the outage lift at which the domain
    /// resolved again (`None` = never went dark, or still dark at the
    /// sampling cap).
    pub recover_s: Option<u64>,
}

/// One scenario's recovery timelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEntry {
    /// Scenario identifier, `kind:subject`.
    pub id: String,
    /// Outage window sampled, virtual seconds.
    pub window_s: u64,
    /// Sample cadence, virtual seconds.
    pub step_s: u64,
    /// Per-domain timelines, sorted by domain.
    pub domains: Vec<DomainRecovery>,
}

/// Simulates one scenario's outage-and-recovery timeline over the
/// domains in `track` (`(domain, country)` pairs — typically the
/// scenario's darkened set).
///
/// # Panics
///
/// Panics if a tracked domain name does not parse.
pub fn simulate_recovery(
    world: &World,
    scenario: &Scenario,
    config: RecoveryConfig,
    track: &[(String, String)],
) -> RecoveryEntry {
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(world, &matchers);
    let resolver =
        StubResolver::new(campaign.network, campaign.roots.to_vec()).with_negative_cache();
    let step = config.step_s.max(1);

    let mut domains: Vec<(DomainName, String, String)> = track
        .iter()
        .map(|(d, c)| {
            (DomainName::from_str(d).expect("recovery: domain name"), d.clone(), c.clone())
        })
        .collect();
    domains.sort_by(|a, b| a.1.cmp(&b.1));

    // Warm-up on the healthy network at t=0.
    for (name, _, _) in &domains {
        warm(&resolver, name);
    }

    // The outage: the scenario's fault layer, nothing else.
    let spec = scenario.spec();
    campaign.network.install_faults(Some(
        FaultPlan::new(0)
            .with_blackholed_addrs(spec.blackhole_addrs.iter().copied())
            .with_blackholed_prefixes(spec.blackhole_prefixes.iter().copied())
            .with_degraded_addrs(spec.degraded_addrs.iter().copied())
            .with_degraded_prefixes(spec.degraded_prefixes.iter().copied())
            .with_degrade_ppm(spec.degrade_ppm),
    ));

    let mut dark_at: Vec<Option<u64>> = vec![None; domains.len()];
    let mut t = step;
    while t <= config.window_s {
        resolver.set_clock_s(t);
        for (i, (name, _, _)) in domains.iter().enumerate() {
            if dark_at[i].is_none() && !alive(&resolver, name) {
                dark_at[i] = Some(t);
            }
        }
        t += step;
    }

    // The lift: faults gone, but negative caches (and any stale
    // positive warmth) still govern what resolves when.
    campaign.network.install_faults(None);
    let mut recover_s: Vec<Option<u64>> = vec![None; domains.len()];
    let mut t = config.window_s + step;
    while t <= config.window_s + RECOVERY_TAIL_CAP_S {
        resolver.set_clock_s(t);
        let mut pending = false;
        for (i, (name, _, _)) in domains.iter().enumerate() {
            if dark_at[i].is_none() || recover_s[i].is_some() {
                continue;
            }
            if alive(&resolver, name) {
                recover_s[i] = Some(t - config.window_s);
            } else {
                pending = true;
            }
        }
        if !pending {
            break;
        }
        t += step;
    }

    RecoveryEntry {
        id: scenario.id(),
        window_s: config.window_s,
        step_s: step,
        domains: domains
            .into_iter()
            .enumerate()
            .map(|(i, (_, domain, country))| DomainRecovery {
                domain,
                country,
                dark_at_s: dark_at[i],
                recover_s: recover_s[i],
            })
            .collect(),
    }
}

/// Pre-outage cache warm-up: the domain's NS set plus every listed
/// nameserver host's addresses.
fn warm(resolver: &StubResolver<'_>, name: &DomainName) {
    let Ok(ns) = resolver.resolve(name, RecordType::Ns) else { return };
    for host in ns.records.iter().filter_map(|r| r.data.as_ns()) {
        let _ = resolver.resolve(host, RecordType::A);
    }
}

/// Liveness through the resolver (cache included): the domain's NS set
/// resolves non-empty and at least one listed nameserver host resolves
/// to at least one address.
fn alive(resolver: &StubResolver<'_>, name: &DomainName) -> bool {
    let Ok(ns) = resolver.resolve(name, RecordType::Ns) else { return false };
    let hosts: Vec<&DomainName> = ns.records.iter().filter_map(|r| r.data.as_ns()).collect();
    if hosts.is_empty() {
        return false;
    }
    hosts
        .iter()
        .any(|h| resolver.resolve(h, RecordType::A).map(|a| !a.records.is_empty()).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use govdns_world::{WorldConfig, WorldGenerator};

    use super::*;
    use crate::scenario::ScenarioKind;

    fn world() -> World {
        WorldGenerator::new(WorldConfig::small(11).with_scale(0.002)).generate()
    }

    /// A scenario blackholing every authoritative server the world
    /// announces — the harshest possible outage.
    fn total_outage(world: &World) -> Scenario {
        Scenario {
            kind: ScenarioKind::Provider,
            subject: "everything".to_owned(),
            blackhole_addrs: world.network.servers().map(|s| s.addr()).collect(),
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
            site_groups: Vec::new(),
            candidates: BTreeSet::new(),
            candidate_domains: 0,
        }
    }

    /// The first three ground-truth domains that actually resolve on
    /// the healthy network.
    fn tracked(world: &World) -> Vec<(String, String)> {
        let resolver = StubResolver::new(&world.network, world.roots.clone());
        world
            .truth()
            .domains
            .iter()
            .filter(|d| d.alive_2021 && alive(&resolver, &d.timeline.name))
            .take(3)
            .map(|d| (d.timeline.name.to_string(), d.timeline.country.as_str().to_owned()))
            .collect()
    }

    #[test]
    fn warm_caches_outlive_short_outages_and_drain_in_long_ones() {
        let w = world();
        let scenario = total_outage(&w);
        let track = tracked(&w);
        assert!(!track.is_empty(), "world has registered domains");

        // A 30-minute outage is invisible through 3600-second TTLs.
        let short =
            simulate_recovery(&w, &scenario, RecoveryConfig { window_s: 1800, step_s: 60 }, &track);
        assert!(short.domains.iter().all(|d| d.dark_at_s.is_none()), "{short:?}");

        // A 2-hour outage drains them; every tracked domain goes dark
        // after its TTL horizon and recovers shortly after the lift.
        let long =
            simulate_recovery(&w, &scenario, RecoveryConfig { window_s: 7200, step_s: 60 }, &track);
        for d in &long.domains {
            let dark = d.dark_at_s.expect("drained past the TTL horizon");
            assert!(dark >= 3600, "went dark before the TTL horizon: {d:?}");
            let rec = d.recover_s.expect("recovered after the lift");
            assert!(rec <= 600, "recovery is prompt once faults lift: {d:?}");
        }
    }

    #[test]
    fn recovery_timelines_are_deterministic() {
        let w = world();
        let scenario = total_outage(&w);
        let track = tracked(&w);
        let cfg = RecoveryConfig { window_s: 7200, step_s: 300 };
        let a = simulate_recovery(&w, &scenario, cfg, &track);
        let b = simulate_recovery(&world(), &scenario, cfg, &track);
        assert_eq!(a, b);
    }
}
