//! # govdns-counterfactual
//!
//! The counterfactual resilience engine: *what-if* analysis over a
//! measured government-DNS baseline. The paper measures deployments
//! as-is; this crate asks which governments go dark when shared
//! infrastructure fails — a third-party DNS provider, an autonomous
//! system, a /24 prefix (with its anycast siblings), or a ccTLD
//! registry.
//!
//! The flow:
//!
//! 1. run the normal measurement campaign to get a baseline
//!    [`MeasurementDataset`](govdns_core::MeasurementDataset),
//! 2. [`enumerate_scenarios`] from the observed nameserver topology
//!    (provider matchers, prefix→ASN database, delegation paths),
//! 3. lower each [`Scenario`] into a
//!    [`ScenarioSpec`](govdns_core::ScenarioSpec) — a fault-plan layer
//!    that hard-fails the scenario's destination set while leaving
//!    every other fault decision untouched,
//! 4. re-run the probe walk per scenario ([`run_sweep`], parallel
//!    across scenarios, journaled/resumable per scenario),
//! 5. recompute per-country reachability with the diff engine's class
//!    transitions and rank scenarios into a [`SpofReport`]: providers /
//!    ASNs / prefixes / ccTLDs ordered by governments darkened.
//!
//! Every report rendering (text table, CSV, canonical JSON) is a
//! deterministic, worker-count-invariant function of the sweep seed —
//! CI byte-compares two sweeps the way it byte-compares two campaigns.
//!
//! Beyond full single outages, the engine models **degraded modes**:
//! [`PartialDial`] fails `k` of every `n` anycast sites,
//! [`compound_scenarios`](crate::enumerate_scenarios) (via
//! [`EnumerationConfig::compound`]) fail two subjects at once, and
//! [`simulate_recovery`] replays an outage window through a
//! TTL-honoring resolver cache to report per-domain *time to dark*
//! and *time to recover*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod recovery;
mod scenario;
mod spof;

pub use engine::{run_sweep, SweepConfig};
pub use recovery::{simulate_recovery, DomainRecovery, RecoveryConfig, RecoveryEntry};
pub use scenario::{
    compound_scenarios, enumerate_scenarios, EnumerationConfig, PartialDial, Scenario, ScenarioKind,
};
pub use spof::{is_dark, Darkened, SpofEntry, SpofReport};
