//! Integration tests for the counterfactual sweep: exact darkening
//! semantics for provider outages, journaled resume, and worker-count
//! invariance of the canonical report.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use govdns_core::{
    run_campaign, BreakerPolicy, Campaign, MeasurementDataset, RetryPolicy, RunnerConfig,
};
use govdns_counterfactual::{
    enumerate_scenarios, is_dark, run_sweep, EnumerationConfig, Scenario, ScenarioKind, SweepConfig,
};
use govdns_diff::DatasetView;
use govdns_world::{World, WorldConfig, WorldGenerator};

const SEED: u64 = 11;
const SCALE: f64 = 0.002;

fn tiny_world() -> World {
    WorldGenerator::new(WorldConfig::small(SEED).with_scale(SCALE)).generate()
}

/// The engine's worker-count-invariant inner configuration, rebuilt
/// through the public API.
fn invariant_config(scenario: Option<&Scenario>) -> RunnerConfig {
    RunnerConfig {
        workers: 1,
        retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
        chaos: None,
        scenario: scenario.map(Scenario::spec),
        breaker: BreakerPolicy::none(),
        ..RunnerConfig::default()
    }
}

fn baseline(world: &World) -> MeasurementDataset {
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(world, &matchers);
    run_campaign(&campaign, invariant_config(None))
}

/// A provider outage darkens *exactly* the domains whose entire
/// baseline nameserver set sits inside the blast set — domains with
/// even one surviving nameserver stay resolvable, domains with none
/// go dark, and the delegation path is untouched.
#[test]
fn provider_outage_darkens_exactly_the_single_provider_domains() {
    let world = tiny_world();
    let base = baseline(&world);
    let matchers = world.catalog.matchers();
    let scenarios = enumerate_scenarios(
        &base,
        &matchers,
        &world.asn_db,
        EnumerationConfig { max_per_kind: 1, ..EnumerationConfig::default() },
    );
    let scenario = scenarios
        .iter()
        .find(|s| s.kind == ScenarioKind::Provider)
        .expect("the world has at least one outsourced provider");
    let blast: &BTreeSet<Ipv4Addr> = &scenario.blackhole_addrs;
    assert!(!blast.is_empty());

    let campaign = Campaign::new(&world, &matchers);
    let under = run_campaign(&campaign, invariant_config(Some(scenario)));

    let base_view = DatasetView::from_dataset(&base);
    let under_view = DatasetView::from_dataset(&under);
    let darkened: BTreeSet<String> = base_view
        .diff(&under_view)
        .transitions
        .iter()
        .filter(|t| !is_dark(t.from) && is_dark(t.to))
        .map(|t| t.domain.clone())
        .collect();
    assert!(!darkened.is_empty(), "the largest provider darkens someone");

    let mut checked_survivor = false;
    for probe in &base.probes {
        if is_dark(probe.class()) {
            continue; // already dark at baseline: cannot "darken".
        }
        // The provider blast set never includes registry servers, so
        // the delegation path is intact for every domain.
        assert!(probe.parent_addrs.iter().all(|a| !blast.contains(a)));
        let ns = probe.ns_addrs();
        let domain = probe.domain.to_string();
        if !ns.is_empty() && ns.iter().all(|a| blast.contains(a)) {
            assert!(darkened.contains(&domain), "{domain}: every NS in blast must go dark");
        } else {
            assert!(!darkened.contains(&domain), "{domain}: a surviving NS must keep it lit");
            checked_survivor |= ns.iter().any(|a| blast.contains(a));
        }
    }
    assert!(checked_survivor, "some multi-provider domain partially overlaps the blast");
}

/// A journaled sweep resumed from its own journals reports the exact
/// same bytes — the scenario campaigns replay instead of re-probing.
#[test]
fn journaled_sweep_resumes_byte_identically() {
    let dir = std::env::temp_dir().join(format!("govdns-cf-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SweepConfig {
        seed: SEED,
        scale_ppm: (SCALE * 1_000_000.0) as u64,
        workers: 1,
        enumeration: EnumerationConfig { max_per_kind: 1, ..EnumerationConfig::default() },
        scenario_filter: Some("provider:".to_owned()),
        journal_dir: Some(dir.clone()),
        ..SweepConfig::default()
    };
    let first = run_sweep(&config);
    let journals: Vec<_> = std::fs::read_dir(&dir)
        .expect("journal dir exists")
        .map(|e| e.expect("dir entry").file_name())
        .collect();
    assert_eq!(journals.len(), 1, "one scenario, one journal: {journals:?}");

    let resumed = run_sweep(&config);
    assert_eq!(first.canonical_json(), resumed.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The report is a pure function of the sweep seed: scenario-level
/// parallelism never changes a byte of the canonical JSON.
#[test]
fn sweep_report_is_worker_count_invariant() {
    let config = SweepConfig {
        seed: SEED,
        scale_ppm: (SCALE * 1_000_000.0) as u64,
        workers: 1,
        enumeration: EnumerationConfig { max_per_kind: 2, ..EnumerationConfig::default() },
        scenario_filter: Some("asn:".to_owned()),
        journal_dir: None,
        ..SweepConfig::default()
    };
    let serial = run_sweep(&config);
    let parallel = run_sweep(&SweepConfig { workers: 4, ..config });
    assert_eq!(serial.canonical_json(), parallel.canonical_json());
    assert_eq!(serial.render_text(), parallel.render_text());
    assert_eq!(serial.to_csv(), parallel.to_csv());
}
