//! Integration tests for degraded-mode resilience: the partial-outage
//! dial's monotone darkening, compound scenarios dominating their
//! components, and the TTL-driven recovery model's byte-stability
//! across worker counts and journal resumes.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use govdns_counterfactual::{
    run_sweep, EnumerationConfig, PartialDial, RecoveryConfig, Scenario, ScenarioKind, SweepConfig,
};

const SEED: u64 = 11;
const SCALE_PPM: u64 = 2_000;

fn base_config() -> SweepConfig {
    SweepConfig {
        seed: SEED,
        scale_ppm: SCALE_PPM,
        workers: 1,
        enumeration: EnumerationConfig { max_per_kind: 1, ..EnumerationConfig::default() },
        scenario_filter: Some("provider:".to_owned()),
        ..SweepConfig::default()
    }
}

fn darkened_domains(config: &SweepConfig) -> BTreeSet<String> {
    run_sweep(config)
        .entries
        .iter()
        .flat_map(|e| e.darkened.iter().map(|d| d.domain.clone()))
        .collect()
}

/// Turning the dial up never turns a domain back on: `k/n` darkens a
/// subset of what `(k+1)/n` darkens, and `n/n` is exactly the full
/// outage.
#[test]
fn partial_dial_darkening_is_monotone_in_k() {
    let full = darkened_domains(&base_config());
    assert!(!full.is_empty(), "the largest provider darkens someone");

    let half = darkened_domains(&SweepConfig {
        partial: Some(PartialDial { k: 1, n: 2 }),
        ..base_config()
    });
    let dialed_full = darkened_domains(&SweepConfig {
        partial: Some(PartialDial { k: 2, n: 2 }),
        ..base_config()
    });

    assert!(half.is_subset(&dialed_full), "k=1/2 ⊄ k=2/2: {half:?} vs {dialed_full:?}");
    assert_eq!(dialed_full, full, "k=n must reproduce the full outage");
}

/// A compound scenario darkens at least the union of what its two
/// components darken alone — the blast set is the union, and darkening
/// is monotone in the blast set.
#[test]
fn compound_darkens_at_least_the_union_of_its_components() {
    let report = run_sweep(&SweepConfig {
        enumeration: EnumerationConfig { max_per_kind: 1, compound: true },
        scenario_filter: None,
        ..base_config()
    });
    let darkened_of = |id: &str| -> Option<BTreeSet<String>> {
        report
            .entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.darkened.iter().map(|d| d.domain.clone()).collect())
    };

    let compounds: Vec<_> =
        report.entries.iter().filter(|e| e.kind == ScenarioKind::Compound).collect();
    assert!(!compounds.is_empty(), "max_per_kind=1 still composes provider×cctld/prefix pairs");
    for compound in compounds {
        let (id_a, id_b) = compound.subject.split_once('+').expect("compound subject is id+id");
        let got: BTreeSet<String> = compound.darkened.iter().map(|d| d.domain.clone()).collect();
        for part in [id_a, id_b] {
            let Some(single) = darkened_of(part) else { continue };
            assert!(
                single.is_subset(&got),
                "{}: component {part} darkens {single:?} but the compound only {got:?}",
                compound.id
            );
        }
    }
}

/// The recovery-modeled report is a pure function of the sweep seed:
/// worker count never changes a byte, and two identical runs agree.
#[test]
fn recovery_report_is_worker_count_invariant() {
    let config = SweepConfig {
        enumeration: EnumerationConfig { max_per_kind: 2, ..EnumerationConfig::default() },
        recovery: Some(RecoveryConfig { window_s: 7200, step_s: 600 }),
        ..base_config()
    };
    let serial = run_sweep(&config);
    assert!(!serial.recovery.is_empty(), "recovery timelines were modeled");
    assert!(
        serial.recovery.iter().flat_map(|r| &r.domains).any(|d| d.dark_at_s.is_some()),
        "a 2-hour outage drains 3600-second TTLs"
    );

    let parallel = run_sweep(&SweepConfig { workers: 8, ..config.clone() });
    assert_eq!(serial.canonical_json(), parallel.canonical_json());
    assert_eq!(serial.render_text(), parallel.render_text());
    assert_eq!(serial.to_csv(), parallel.to_csv());

    let again = run_sweep(&config);
    assert_eq!(serial.canonical_json(), again.canonical_json());
}

/// A journaled recovery sweep killed mid-flight resumes byte-identically:
/// scenarios whose journals survived replay, the one whose journal was
/// lost re-probes, and the report bytes match the uninterrupted run.
#[test]
fn journaled_recovery_sweep_survives_a_mid_sweep_kill() {
    let dir = std::env::temp_dir().join(format!("govdns-cf-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = SweepConfig {
        enumeration: EnumerationConfig { max_per_kind: 2, ..EnumerationConfig::default() },
        recovery: Some(RecoveryConfig { window_s: 7200, step_s: 600 }),
        journal_dir: Some(dir.clone()),
        ..base_config()
    };
    let first = run_sweep(&config);
    assert!(!first.recovery.is_empty());

    // The mid-sweep kill: one scenario's journal never made it to disk.
    let mut journals: Vec<_> = std::fs::read_dir(&dir)
        .expect("journal dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    journals.sort();
    assert_eq!(journals.len(), 2, "two provider scenarios, two journals: {journals:?}");
    std::fs::remove_file(&journals[0]).expect("drop one journal");

    let resumed = run_sweep(&config);
    assert_eq!(first.canonical_json(), resumed.canonical_json());
    assert_eq!(first.to_csv(), resumed.to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}

fn scenario_with(addrs: &[Ipv4Addr], groups: Vec<Vec<Ipv4Addr>>) -> Scenario {
    Scenario {
        kind: ScenarioKind::Provider,
        subject: "dial".to_owned(),
        blackhole_addrs: addrs.iter().copied().collect(),
        blackhole_prefixes: BTreeSet::new(),
        degraded_addrs: BTreeSet::new(),
        degraded_prefixes: BTreeSet::new(),
        degrade_ppm: 0,
        site_groups: groups,
        candidates: BTreeSet::new(),
        candidate_domains: 0,
    }
}

proptest! {
    /// The dial's site selection nests for any address population and
    /// grouping: the blast at `k/n` is a subset of the blast at
    /// `(k+1)/n`, per group and overall, and `n/n` is everything.
    #[test]
    fn dial_selection_nests_for_any_population(
        raw in prop::collection::vec(any::<u32>(), 1..24),
        n in 1u32..6,
        split in any::<u8>(),
    ) {
        let unique: BTreeSet<u32> = raw.into_iter().collect();
        let addrs: Vec<Ipv4Addr> = unique.iter().map(|&v| Ipv4Addr::from(v)).collect();
        // Deterministically split the population into two site groups.
        let cut = (usize::from(split) % addrs.len()).max(1).min(addrs.len());
        let groups = vec![addrs[..cut].to_vec(), addrs[cut..].to_vec()];
        let scenario = scenario_with(&addrs, groups);

        let mut prev: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for k in 0..=n {
            let dialed = scenario.dialed(PartialDial { k, n });
            prop_assert!(
                dialed.blackhole_addrs.is_superset(&prev),
                "k={k}/{n}: {:?} ⊉ {prev:?}", dialed.blackhole_addrs
            );
            prop_assert!(dialed.blackhole_addrs.is_subset(&scenario.blackhole_addrs));
            prev = dialed.blackhole_addrs;
        }
        prop_assert_eq!(prev, scenario.blackhole_addrs.clone(), "n/n fails every site");
    }
}
