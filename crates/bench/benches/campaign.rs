//! End-to-end campaign throughput across worker counts — the regression
//! gate for the de-serialized query hot path.
//!
//! Each bench runs the full probing pipeline (seed selection excluded by
//! construction: the world and matchers are built once) over the same
//! 1%-scale world at 1, 2, 4, and 8 workers. With per-query accounting
//! on atomics and sharded tables, adding workers must scale throughput;
//! a global lock on the hot path flattens (or inverts) the curve, which
//! is exactly what `ci.sh`'s ratio guard on `BENCH_campaign.json`
//! detects. Probes per second is `domains / (ns_per_iter / 1e9)`.
//!
//! `traced_8` re-runs the 8-worker configuration with the flight
//! recorder on (full sampling, trace file to a temp path): `ci.sh`'s
//! guard on `BENCH_trace.json` requires traced throughput to stay
//! within 0.90x of untraced, keeping event emission off the lock path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use govdns_core::{run_campaign, Campaign, RunnerConfig};
use govdns_trace::TraceSpec;
use govdns_world::{WorldConfig, WorldGenerator};

fn campaign_throughput(c: &mut Criterion) {
    let world = WorldGenerator::new(WorldConfig::small(77).with_scale(0.01)).generate();
    let matchers = world.catalog.matchers();
    let domains = {
        let campaign = Campaign::new(&world, &matchers);
        let ds = run_campaign(&campaign, RunnerConfig::default());
        ds.probes.len() as u64
    };

    let mut group = c.benchmark_group("campaign");
    group.sample_size(5);
    group.throughput(Throughput::Elements(domains));
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let campaign = Campaign::new(&world, &matchers);
                let ds =
                    run_campaign(&campaign, RunnerConfig { workers, ..RunnerConfig::default() });
                black_box(ds.probes.len())
            })
        });
    }
    let trace_path =
        std::env::temp_dir().join(format!("govdns-bench-trace-{}.trace", std::process::id()));
    group.bench_function("traced_8", |b| {
        b.iter(|| {
            let campaign = Campaign::new(&world, &matchers);
            let ds = run_campaign(
                &campaign,
                RunnerConfig {
                    workers: 8,
                    trace: Some(TraceSpec::new(&trace_path)),
                    ..RunnerConfig::default()
                },
            );
            black_box(ds.probes.len())
        })
    });
    let _ = std::fs::remove_file(&trace_path);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = campaign_throughput
}
criterion_main!(benches);
