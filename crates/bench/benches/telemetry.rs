//! Telemetry hot-path microbenches: the per-query overhead the pipeline
//! pays for observability must stay in the nanosecond range.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use govdns_telemetry::{Histogram, Registry};

fn telemetry(c: &mut Criterion) {
    let registry = Registry::new();

    // Counter increment through a cached handle — the cost every
    // simulated query pays once telemetry is attached.
    let counter = registry.counter("net.queries");
    c.bench_function("counter_inc", |b| b.iter(|| black_box(&counter).inc()));

    // Handle lookup through the registry (the cold path sinks avoid).
    c.bench_function("registry_counter_lookup", |b| {
        b.iter(|| black_box(registry.counter(black_box("net.queries"))))
    });

    // Histogram record: bucket scan plus three CAS-updated scalars.
    let latencies = registry.histogram_latency_ms("net.rtt_ms");
    let mut group = c.benchmark_group("histogram_record");
    group.throughput(Throughput::Elements(1));
    group.bench_function("latency_low_bucket", |b| {
        b.iter(|| black_box(&latencies).record(black_box(3.0)))
    });
    group.bench_function("latency_overflow", |b| {
        b.iter(|| black_box(&latencies).record(black_box(50_000.0)))
    });
    group.finish();

    // Span start/finish pair (two Instant reads plus a stage fold).
    c.bench_function("span_start_finish", |b| {
        b.iter(|| registry.span(black_box("probe.domain")).finish())
    });

    // Snapshot of a populated registry, as taken once per campaign.
    let h = Histogram::latency_ms();
    for i in 0..1000 {
        h.record(f64::from(i % 512));
    }
    for i in 0u64..20 {
        registry.counter(&format!("c{i}")).add(i);
    }
    c.bench_function("registry_snapshot", |b| b.iter(|| black_box(registry.snapshot())));
}

criterion_group!(benches, telemetry);
criterion_main!(benches);
