//! One bench per figure of the paper's evaluation: each timed body
//! regenerates the figure's rows/series from the fixture's data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use govdns_bench::fixture;
use govdns_core::analysis::consistency::ConsistencyAnalysis;
use govdns_core::analysis::delegation::DelegationAnalysis;
use govdns_core::analysis::replication::{
    ActiveReplication, DomainsPerCountry, PrivateShare, SingleNsChurn, YearlyTotals,
};
use govdns_core::report::LevelMix;

fn figures(c: &mut Criterion) {
    let f = fixture();
    let campaign = f.campaign();

    c.bench_function("fig02_03_yearly_totals", |b| {
        b.iter(|| {
            let t = YearlyTotals::compute(black_box(&f.longitudinal));
            black_box(t.domains(2020))
        })
    });

    c.bench_function("fig04_domains_per_country", |b| {
        b.iter(|| {
            let t = DomainsPerCountry::compute(black_box(&f.longitudinal), 2020);
            black_box(t.rows.len())
        })
    });

    c.bench_function("fig05_ns_daily_mode", |b| {
        // The per-domain mode computation underlying Fig 5/6/7.
        let history = f
            .longitudinal
            .histories
            .iter()
            .max_by_key(|h| h.ns_entries.len())
            .expect("non-empty longitudinal index");
        b.iter(|| black_box(history.ns_mode(black_box(2019))))
    });

    c.bench_function("fig06_d1ns_churn", |b| {
        b.iter(|| {
            let t = SingleNsChurn::compute(black_box(&f.longitudinal));
            black_box(t.churn.len())
        })
    });

    c.bench_function("fig07_private_share", |b| {
        b.iter(|| {
            let t = PrivateShare::compute(black_box(&f.longitudinal));
            black_box(t.rows.len())
        })
    });

    c.bench_function("fig08_09_active_replication", |b| {
        b.iter(|| {
            let t = ActiveReplication::compute(black_box(&f.dataset));
            black_box((t.d1ns_total, t.multi_ns_share))
        })
    });

    c.bench_function("fig10_12_delegation_analysis", |b| {
        b.iter(|| {
            let t = DelegationAnalysis::compute(black_box(&f.dataset), black_box(&campaign));
            black_box((t.any_defective, t.available.len()))
        })
    });

    c.bench_function("fig13_14_consistency_analysis", |b| {
        b.iter(|| {
            let t = ConsistencyAnalysis::compute(black_box(&f.dataset), black_box(&campaign));
            black_box((t.comparable, t.equal_pct))
        })
    });

    c.bench_function("levels_section3", |b| {
        b.iter(|| black_box(LevelMix::compute(black_box(&f.dataset))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = figures
}
criterion_main!(benches);
