//! Pipeline-stage benches: world generation, seed selection, discovery,
//! per-domain probing, and the end-to-end campaign.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use govdns_bench::fixture;
use govdns_core::discovery::{self, DiscoveryConfig};
use govdns_core::{run_campaign, seed, ProbeClient, RateLimiter, RunnerConfig};
use govdns_world::{WorldConfig, WorldGenerator};

fn pipeline(c: &mut Criterion) {
    let f = fixture();
    let campaign = f.campaign();

    c.bench_function("world_generation_0p5pct", |b| {
        b.iter(|| {
            let w = WorldGenerator::new(WorldConfig::small(9).with_scale(0.005)).generate();
            black_box(w.network.server_count())
        })
    });

    c.bench_function("seed_selection_193_countries", |b| {
        b.iter(|| black_box(seed::select_seeds(black_box(&campaign)).len()))
    });

    c.bench_function("discovery_wildcard_expansion", |b| {
        b.iter(|| {
            let d = discovery::discover(
                black_box(&campaign),
                black_box(&f.dataset.seeds),
                DiscoveryConfig::paper(f.world.collection_date),
            );
            black_box(d.len())
        })
    });

    // Per-domain probe throughput over a mixed sample.
    let sample: Vec<_> =
        f.dataset.discovered.iter().map(|d| d.name.clone()).step_by(37).take(64).collect();
    let mut group = c.benchmark_group("probe");
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function(BenchmarkId::new("figure1_walk", sample.len()), |b| {
        let client =
            ProbeClient::new(&f.world.network, f.world.roots.clone(), RateLimiter::default());
        b.iter(|| {
            let mut answered = 0usize;
            for name in &sample {
                let probe = client.probe(black_box(name));
                answered += usize::from(probe.has_authoritative_answer());
            }
            black_box(answered)
        })
    });
    group.finish();

    c.bench_function("full_campaign_1pct_world", |b| {
        let world = WorldGenerator::new(WorldConfig::small(77).with_scale(0.01)).generate();
        let matchers = world.catalog.matchers();
        b.iter(|| {
            let campaign = govdns_core::Campaign::new(&world, &matchers);
            let ds = run_campaign(&campaign, RunnerConfig { workers: 4, ..Default::default() });
            black_box(ds.probes.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = pipeline
}
criterion_main!(benches);
