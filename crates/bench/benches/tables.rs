//! One bench per table of the paper's evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use govdns_bench::fixture;
use govdns_core::analysis::diversity::DiversityTable;
use govdns_core::analysis::providers::ProviderAnalysis;

fn tables(c: &mut Criterion) {
    let f = fixture();
    let campaign = f.campaign();

    c.bench_function("table1_diversity", |b| {
        b.iter(|| {
            let t = DiversityTable::compute(black_box(&f.dataset), black_box(&campaign));
            black_box(t.total().multi_asn_pct)
        })
    });

    // Tables II and III share the per-year classification pass; measure
    // the pass and each rendering separately.
    c.bench_function("table2_3_provider_classification", |b| {
        b.iter(|| {
            let t = ProviderAnalysis::compute(black_box(&f.longitudinal), black_box(&campaign));
            black_box(t.years.len())
        })
    });

    let providers = ProviderAnalysis::compute(&f.longitudinal, &campaign);
    c.bench_function("table2_major_providers_render", |b| {
        b.iter(|| black_box(providers.table2().to_text().len()))
    });
    c.bench_function("table3_top_providers_render", |b| {
        b.iter(|| {
            black_box(
                providers.table3(2011).to_text().len() + providers.table3(2020).to_text().len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = tables
}
criterion_main!(benches);
