//! Substrate microbenches: wire codec, zone lookup, PDNS wildcard search,
//! and iterative resolution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use govdns_bench::fixture;
use govdns_model::{wire, DomainName, Message, RecordType};
use govdns_simnet::StubResolver;

fn substrates(c: &mut Criterion) {
    let f = fixture();

    // Wire codec round-trip on a realistic referral-sized response.
    let sample_domain: DomainName =
        f.dataset.discovered[f.dataset.discovered.len() / 2].name.clone();
    let q = Message::query(1, sample_domain.clone(), RecordType::Ns);
    let reply = {
        // Grab a real response from the network.
        let mut msg = None;
        for addr in f.world.network.servers().map(|s| s.addr()) {
            if let Some(r) = f.world.network.deliver(addr, &q).reply() {
                if !r.answers.is_empty() || !r.authority.is_empty() {
                    msg = Some(r.clone());
                    break;
                }
            }
        }
        msg.unwrap_or_else(|| q.response())
    };
    let encoded = wire::encode(&reply);
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| b.iter(|| black_box(wire::encode(black_box(&reply)))));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(wire::decode(black_box(&encoded)).expect("valid wire data")))
    });
    group.finish();

    // Authoritative zone lookup through a loaded server.
    let busiest =
        f.world.network.servers().max_by_key(|s| s.zones().len()).expect("network has servers");
    let busy_q = Message::query(2, sample_domain.clone(), RecordType::Ns);
    c.bench_function("server_handle_query", |b| {
        b.iter(|| black_box(busiest.handle(black_box(&busy_q))))
    });

    // PDNS left-hand wildcard search over the biggest seed.
    let biggest_seed = f
        .dataset
        .seeds
        .iter()
        .max_by_key(|s| f.world.pdns.search_subtree(&s.name).count())
        .expect("seeds exist");
    c.bench_function("pdns_wildcard_search", |b| {
        b.iter(|| black_box(f.world.pdns.search_subtree(black_box(&biggest_seed.name)).count()))
    });

    // Full iterative resolution from the root (cold cache each iter).
    c.bench_function("resolver_iterative_walk", |b| {
        b.iter(|| {
            let resolver = StubResolver::new(&f.world.network, f.world.roots.clone());
            black_box(resolver.resolve(black_box(&sample_domain), RecordType::Ns).ok())
        })
    });

    // Zone master-file parse + serialize on a realistic government zone.
    let zone_text = {
        let zone = f
            .world
            .network
            .servers()
            .flat_map(|s| s.zones().iter())
            .max_by_key(|z| z.rrset_count())
            .expect("zones exist");
        govdns_model::zonefile::serialize(zone)
    };
    let mut group = c.benchmark_group("zonefile");
    group.throughput(Throughput::Bytes(zone_text.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(govdns_model::zonefile::parse(black_box(&zone_text)).unwrap()))
    });
    group.finish();

    // Passive-DNS TSV export/import throughput.
    let tsv = govdns_pdns::export::to_tsv(&f.world.pdns);
    let mut group = c.benchmark_group("pdns_tsv");
    group.throughput(Throughput::Bytes(tsv.len() as u64));
    group.sample_size(10);
    group.bench_function("export", |b| {
        b.iter(|| black_box(govdns_pdns::export::to_tsv(black_box(&f.world.pdns)).len()))
    });
    group.bench_function("import", |b| {
        b.iter(|| black_box(govdns_pdns::export::from_tsv(black_box(&tsv)).unwrap().len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = substrates
}
criterion_main!(benches);
