//! Shared fixtures for the benchmark harness: one world and one completed
//! measurement campaign, built once and reused by every bench target so
//! the timed sections measure the analyses, not world generation.

use std::sync::OnceLock;

use govdns_core::analysis::longitudinal::Longitudinal;
use govdns_core::{run_campaign, Campaign, MeasurementDataset, RunnerConfig};
use govdns_world::{ProviderMatcher, World, WorldConfig, WorldGenerator};

/// Scale used by the benchmark world (2% of paper scale keeps Criterion
/// iterations meaningful without multi-minute setup).
pub const BENCH_SCALE: f64 = 0.02;

/// Everything a bench needs, pre-built.
pub struct Fixture {
    /// The generated world.
    pub world: World,
    /// Provider classification rules.
    pub matchers: Vec<ProviderMatcher>,
    /// A completed campaign.
    pub dataset: MeasurementDataset,
    /// The longitudinal PDNS index.
    pub longitudinal: Longitudinal,
}

impl Fixture {
    /// A campaign view over the fixture's world.
    pub fn campaign(&self) -> Campaign<'_> {
        Campaign::new(&self.world, &self.matchers)
    }
}

/// The process-wide fixture.
pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world =
            WorldGenerator::new(WorldConfig::small(2022).with_scale(BENCH_SCALE)).generate();
        let matchers = world.catalog.matchers();
        let (dataset, longitudinal) = {
            let campaign = Campaign::new(&world, &matchers);
            let dataset = run_campaign(&campaign, RunnerConfig::default());
            let lon = Longitudinal::build(&campaign, &dataset.seeds);
            (dataset, lon)
        };
        Fixture { world, matchers, dataset, longitudinal }
    })
}
