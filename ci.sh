#!/usr/bin/env bash
# Local CI gate: formatting, release build, full test suite (incl. doc
# tests), warning-free clippy, the chaos determinism smoke, the
# crash/resume smoke, the trace determinism smoke, the cross-run diff
# smoke (self-diff empty, cross-seed divergence deterministic, corpus
# replay byte-identical), the counterfactual SPOF smoke (seeded sweeps
# byte-identical across runs and worker counts, and matching the
# checked-in corpus artifact), the smell smoke (trace-cited operational
# smell verdicts byte-stable across runs and worker counts, every
# detector firing, and matching the checked-in corpus artifact), and
# the bench guards (telemetry, campaign scaling, flight-recorder
# overhead).
# Mirrored by .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== doc tests =="
cargo test -q --doc

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== chaos smoke: identical seeds => identical output =="
chaos_a="$(mktemp)"
chaos_b="$(mktemp)"
trap 'rm -f "$chaos_a" "$chaos_b"' EXIT
cargo run -q --release --example chaos -- --seed 7 > "$chaos_a"
cargo run -q --release --example chaos -- --seed 7 > "$chaos_b"
diff -u "$chaos_a" "$chaos_b"
grep -q "dataset fingerprint" "$chaos_a"

echo "== breaker smoke: quarantine under hostile chaos is deterministic =="
breaker_a="$(mktemp)"
breaker_b="$(mktemp)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"' EXIT
cargo run -q --release --example chaos -- --seed 3 --profile hostile --scale 0.01 --breaker > "$breaker_a"
cargo run -q --release --example chaos -- --seed 3 --profile hostile --scale 0.01 --breaker > "$breaker_b"
diff -u "$breaker_a" "$breaker_b"
grep -q "circuit breakers" "$breaker_a"

echo "== resume smoke: crash at half-campaign, resume, identical fingerprint =="
resume_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir"' EXIT
# Full uninterrupted run: the reference fingerprint.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/full.journal" > "$resume_dir/full.out"
# Crash hard (exit 9) mid-campaign; the journal survives.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/crash.journal" --crash-after 200 > "$resume_dir/crash.out" || true
# Resume from the journal and finish.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/crash.journal" --resume > "$resume_dir/resumed.out"
full_fp="$(grep 'dataset fingerprint' "$resume_dir/full.out")"
resumed_fp="$(grep 'dataset fingerprint' "$resume_dir/resumed.out")"
[ -n "$full_fp" ] && [ "$full_fp" = "$resumed_fp" ] || {
    echo "resume smoke: fingerprints differ" >&2
    echo "  full:    $full_fp" >&2
    echo "  resumed: $resumed_fp" >&2
    exit 1
}
grep -q "probes replayed" "$resume_dir/resumed.out"

echo "== sink smoke: channel-fed journal sink is byte-stable run to run =="
# The journal now reaches disk through a dedicated I/O thread fed by a
# bounded channel; identical runs must still produce identical bytes.
# (Cross-worker-count byte identity is a trace-file property — journal
# records carry side-query tallies that follow per-worker resolver
# cache warmth — so the journal gate is run-to-run at a fixed count,
# and the diff smoke below gates the dataset view across counts.)
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/full2.journal" > /dev/null
cmp "$resume_dir/full.journal" "$resume_dir/full2.journal" || {
    echo "sink smoke: identical runs produced different journal bytes" >&2
    exit 1
}

echo "== trace smoke: identical seeds => byte-identical traces at any worker count =="
trace_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir" "$trace_dir"' EXIT
cargo run -q --release --example trace -- --seed 7 --workers 1 --scale 0.01 \
    --out "$trace_dir/w1.trace" > "$trace_dir/w1.out"
cargo run -q --release --example trace -- --seed 7 --workers 8 --scale 0.01 \
    --out "$trace_dir/w8.trace" > "$trace_dir/w8.out"
cmp "$trace_dir/w1.trace" "$trace_dir/w8.trace" || {
    echo "trace smoke: trace files differ between 1 and 8 workers" >&2
    exit 1
}
diff -u "$trace_dir/w1.out" "$trace_dir/w8.out"
grep -q "trace fingerprint" "$trace_dir/w1.out"

echo "== diff smoke: self-diff empty, cross-seed diff deterministic, corpus replays =="
diff_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir" "$trace_dir" "$diff_dir"' EXIT
cargo run -q --release --example diff -- run --seed 7 --workers 1 --scale 0.01 --out "$diff_dir/a"
cargo run -q --release --example diff -- run --seed 7 --workers 8 --scale 0.01 --out "$diff_dir/a8"
cargo run -q --release --example diff -- run --seed 8 --workers 4 --scale 0.01 --out "$diff_dir/b"
# Same seed at different worker counts: the gate must pass with zero differences.
cargo run -q --release --example diff -- diff "$diff_dir/a" "$diff_dir/a8" --gate > "$diff_dir/self.out"
grep -q "runs are identical" "$diff_dir/self.out"
# Different seeds: nonzero divergence with a first-divergence timeline,
# deterministic (the same comparison twice is byte-identical), and the
# gate exits nonzero.
cargo run -q --release --example diff -- diff "$diff_dir/a" "$diff_dir/b" > "$diff_dir/x1.out"
cargo run -q --release --example diff -- diff "$diff_dir/a" "$diff_dir/b" > "$diff_dir/x2.out"
cmp "$diff_dir/x1.out" "$diff_dir/x2.out"
grep -q "first divergence in" "$diff_dir/x1.out"
grep -q "total differences:" "$diff_dir/x1.out"
! cargo run -q --release --example diff -- diff "$diff_dir/a" "$diff_dir/b" --gate > /dev/null
# The JSON diff is worker-count invariant: seed 7 vs seed 8 reads the
# same whichever worker count produced the seed-7 archive.
cargo run -q --release --example diff -- diff "$diff_dir/a" "$diff_dir/b" --json > "$diff_dir/j1.json"
cargo run -q --release --example diff -- diff "$diff_dir/a8" "$diff_dir/b" --json > "$diff_dir/j2.json"
cmp "$diff_dir/j1.json" "$diff_dir/j2.json"
# A forced analysis failure captures a corpus case that replays
# byte-identically against a fresh simnet.
GOVDNS_FAIL_ANALYSIS=providers cargo run -q --release --example diff -- run --seed 7 --scale 0.004 \
    --out "$diff_dir/fail" --corpus-dir "$diff_dir/corpus" --case smoke > "$diff_dir/fail.out" 2>/dev/null
grep -q "corpus case captured" "$diff_dir/fail.out"
cargo run -q --release --example diff -- replay "$diff_dir/corpus/smoke.json" > "$diff_dir/replay.out"
grep -q "byte-identical" "$diff_dir/replay.out"
# The checked-in regression corpus still replays byte-identically —
# every case, and loudly empty-checked so a bad glob can never turn
# the replay gate into a no-op.
shopt -s nullglob
corpus_cases=(corpus/*.json)
shopt -u nullglob
[ "${#corpus_cases[@]}" -gt 0 ] || {
    echo "diff smoke: regression corpus glob corpus/*.json matched nothing" >&2
    exit 1
}
echo "replaying ${#corpus_cases[@]} corpus case(s)"
cargo run -q --release --example diff -- replay "${corpus_cases[@]}"

echo "== counterfactual smoke: seeded SPOF sweep is byte-stable =="
cf_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir" "$trace_dir" "$diff_dir" "$cf_dir"' EXIT
cf_args=(--seed 7 --scale 0.002 --max-per-kind 3)
# Same seed twice at 8 workers, once at 1 worker: the canonical JSON
# must be byte-identical across all three, and stdout must carry the
# ranked table.
cargo run -q --release --example counterfactual -- rank "${cf_args[@]}" --workers 8 \
    --out "$cf_dir/a.json" > "$cf_dir/a.out"
cargo run -q --release --example counterfactual -- rank "${cf_args[@]}" --workers 8 \
    --out "$cf_dir/b.json" > "$cf_dir/b.out"
cargo run -q --release --example counterfactual -- rank "${cf_args[@]}" --workers 1 \
    --out "$cf_dir/w1.json" > "$cf_dir/w1.out"
cmp "$cf_dir/a.json" "$cf_dir/b.json" || {
    echo "counterfactual smoke: identical seeds produced different SPOF JSON" >&2
    exit 1
}
cmp "$cf_dir/a.json" "$cf_dir/w1.json" || {
    echo "counterfactual smoke: SPOF JSON differs between 1 and 8 workers" >&2
    exit 1
}
diff -u "$cf_dir/a.out" "$cf_dir/w1.out"
grep -q "single points of failure" "$cf_dir/a.out"
# The checked-in SPOF artifact pins this sweep's exact bytes.
cmp corpus/spof/rank-seed7.json "$cf_dir/a.json" || {
    echo "counterfactual smoke: sweep no longer matches corpus/spof/rank-seed7.json" >&2
    echo "(if the change is intentional, regenerate the artifact with:" >&2
    echo "  cargo run --release --example counterfactual -- rank ${cf_args[*]} --workers 8 --out corpus/spof/rank-seed7.json)" >&2
    exit 1
}

echo "== degraded-mode smoke: compound+partial+recovery sweep is byte-stable =="
# Compound scenarios, the 1-of-2 partial dial, and TTL-driven recovery
# timelines together: same seed at 8 workers and 1 worker must agree
# byte-for-byte, and the checked-in artifact pins the exact bytes.
rec_args=(--seed 7 --scale 0.002 --max-per-kind 2 --combo --partial 1/2
    --recovery-window 7200 --recovery-step 600)
cargo run -q --release --example counterfactual -- rank "${rec_args[@]}" --workers 8 \
    --out "$cf_dir/r8.json" > "$cf_dir/r8.out"
cargo run -q --release --example counterfactual -- rank "${rec_args[@]}" --workers 1 \
    --out "$cf_dir/r1.json" > "$cf_dir/r1.out"
cmp "$cf_dir/r8.json" "$cf_dir/r1.json" || {
    echo "degraded-mode smoke: recovery JSON differs between 1 and 8 workers" >&2
    exit 1
}
diff -u "$cf_dir/r8.out" "$cf_dir/r1.out"
grep -q "recovery timelines" "$cf_dir/r8.out"
cmp corpus/spof/recovery-seed7.json "$cf_dir/r8.json" || {
    echo "degraded-mode smoke: sweep no longer matches corpus/spof/recovery-seed7.json" >&2
    echo "(if the change is intentional, regenerate the artifact with:" >&2
    echo "  cargo run --release --example counterfactual -- rank ${rec_args[*]} --workers 8 --out corpus/spof/recovery-seed7.json)" >&2
    exit 1
}
# A sweep that enumerates nothing must fail loudly — an empty ranked
# report upstream of the byte-gates above would pass them vacuously.
if cargo run -q --release --example counterfactual -- rank --seed 7 --scale 0.002 \
    --scenario no-such-scenario-xyzzy > /dev/null 2>&1; then
    echo "degraded-mode smoke: empty scenario enumeration exited zero" >&2
    exit 1
fi

echo "== smell smoke: trace-cited verdicts are byte-stable =="
smell_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir" "$trace_dir" "$diff_dir" "$cf_dir" "$smell_dir"' EXIT
smell_args=(--seed 7 --scale 0.002)
# Same seed twice at 8 workers, once at 1 worker: canonical JSON and
# stdout must be byte-identical across all three.
cargo run -q --release --example smell -- run "${smell_args[@]}" --workers 8 \
    --out "$smell_dir/a.json" > "$smell_dir/a.out"
cargo run -q --release --example smell -- run "${smell_args[@]}" --workers 8 \
    --out "$smell_dir/b.json" > "$smell_dir/b.out"
cargo run -q --release --example smell -- run "${smell_args[@]}" --workers 1 \
    --out "$smell_dir/w1.json" > "$smell_dir/w1.out"
cmp "$smell_dir/a.json" "$smell_dir/b.json" || {
    echo "smell smoke: identical seeds produced different smell JSON" >&2
    exit 1
}
cmp "$smell_dir/a.json" "$smell_dir/w1.json" || {
    echo "smell smoke: smell JSON differs between 1 and 8 workers" >&2
    exit 1
}
diff -u "$smell_dir/a.out" "$smell_dir/w1.out"
# Every detector fires on the seed-7 world.
for kind in cyclic_dependency single_homed_glue stale_parent_ns \
    provider_monoculture lame_delegation; do
    grep -q "\"kind\":\"$kind\"" "$smell_dir/a.json" || {
        echo "smell smoke: detector $kind found nothing on the seed-7 world" >&2
        exit 1
    }
done
# The checked-in artifact pins this run's exact bytes.
cmp corpus/smell/smells-seed7.json "$smell_dir/a.json" || {
    echo "smell smoke: run no longer matches corpus/smell/smells-seed7.json" >&2
    echo "(if the change is intentional, regenerate the artifact with:" >&2
    echo "  cargo run --release --example smell -- run ${smell_args[*]} --workers 8 --out corpus/smell/smells-seed7.json)" >&2
    exit 1
}
# Inspect mode round-trips the archived report byte-for-byte.
cargo run -q --release --example smell -- inspect corpus/smell/smells-seed7.json --json \
    > "$smell_dir/roundtrip.json"
cmp <(cat corpus/smell/smells-seed7.json; echo) "$smell_dir/roundtrip.json" || {
    echo "smell smoke: inspect --json did not round-trip the corpus artifact" >&2
    exit 1
}
# A typo'd --explain domain must exit nonzero, not report a clean run.
if cargo run -q --release --example smell -- inspect corpus/smell/smells-seed7.json \
    --explain no.such.domain > /dev/null 2>&1; then
    echo "smell smoke: --explain on an unknown domain exited zero" >&2
    exit 1
fi
if cargo run -q --release --example trace -- --seed 7 --scale 0.002 \
    --explain no.such.domain > /dev/null 2>&1; then
    echo "smell smoke: trace --explain on an unknown domain exited zero" >&2
    exit 1
fi

echo "== bench guard: telemetry hot path =="
# The vendored criterion stand-in prints one "ns/iter" line per bench;
# keep the numbers as a machine-readable artifact for trend-watching.
cargo bench -q -p govdns-bench --bench telemetry | tee /dev/stderr | awk '
    BEGIN { print "{"; first = 1 }
    / ns\/iter / {
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": %s", $2, $3
    }
    END { if (!first) printf "\n"; print "}" }
' > BENCH_telemetry.json
python3 -c "import json; d = json.load(open('BENCH_telemetry.json')); assert d, 'no benches parsed'" \
    || { echo "bench guard: BENCH_telemetry.json is empty or invalid" >&2; exit 1; }

echo "== bench guard: campaign throughput scales with workers =="
# End-to-end probes/sec at 1/2/4/8 workers over the same world. The
# ratio gate catches a re-serialized hot path: on a multi-core machine
# 8 workers must deliver at least 2x the 1-worker throughput; on
# starved runners (< 4 cores) we only require that adding workers does
# not *halve* throughput — the signature of a lock convoy.
cargo bench -q -p govdns-bench --bench campaign | tee /dev/stderr | awk '
    BEGIN { print "{"; first = 1 }
    / ns\/iter / {
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": %s", $2, $3
    }
    END { if (!first) printf "\n"; print "}" }
' > BENCH_campaign.json
python3 - <<'PY' || { echo "bench guard: campaign scaling regressed" >&2; exit 1; }
import json, os

d = json.load(open("BENCH_campaign.json"))
one = d["campaign/workers_1"]
eight = d["campaign/workers_8"]
assert one > 0 and eight > 0, f"degenerate timings: {d}"
# Same work per iteration, so throughput ratio = inverse time ratio.
ratio = one / eight
cores = os.cpu_count() or 1
floor = 2.0 if cores >= 4 else 0.5
# Stamp the measurement conditions into the artifact: numbers taken on
# a starved runner (< 4 cores) say nothing about parallel scaling and
# must not be trend-compared against multi-core measurements.
d["cores"] = cores
d["starved_runner"] = cores < 4
json.dump(d, open("BENCH_campaign.json", "w"), indent=2)
print(f"campaign bench: 8-worker/1-worker throughput ratio {ratio:.2f} "
      f"(floor {floor}, {cores} cores)")
assert ratio >= floor, (
    f"8 workers deliver only {ratio:.2f}x the 1-worker throughput "
    f"(floor {floor} on {cores} cores) — hot path re-serialized?")
PY

echo "== bench guard: flight recorder overhead =="
# traced_8 is the 8-worker campaign with the flight recorder on (full
# sampling, file sink). Workers hand event blocks to the dedicated
# trace sink thread over a channel; encoding and file writes happen
# there, so on a multi-core machine they overlap probing
# and traced throughput must stay within 0.90x of untraced. On starved
# runners (< 4 cores) there is no parallelism to hide the encode CPU
# behind — same policy as the worker-scaling gate above — so we only
# require tracing not to halve throughput.
python3 - <<'PY' || { echo "bench guard: tracing overhead regressed" >&2; exit 1; }
import json, os

d = json.load(open("BENCH_campaign.json"))
untraced = d["campaign/workers_8"]
traced = d["campaign/traced_8"]
assert untraced > 0 and traced > 0, f"degenerate timings: {d}"
# Same work per iteration, so throughput ratio = inverse time ratio.
ratio = untraced / traced
cores = os.cpu_count() or 1
floor = 0.90 if cores >= 4 else 0.5
print(f"trace bench: traced/untraced throughput ratio {ratio:.2f} "
      f"(floor {floor}, {cores} cores)")
json.dump({"campaign/workers_8": untraced, "campaign/traced_8": traced,
           "traced_over_untraced_throughput": round(ratio, 4),
           "cores": cores, "starved_runner": cores < 4},
          open("BENCH_trace.json", "w"), indent=2)
assert ratio >= floor, (
    f"tracing costs too much: traced throughput is {ratio:.2f}x untraced "
    f"(floor {floor} on {cores} cores) — is emission taking a lock or "
    f"doing I/O inline?")
PY

echo "ci: all green"
