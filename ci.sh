#!/usr/bin/env bash
# Local CI gate: formatting, release build, full test suite (incl. doc
# tests), warning-free clippy, the chaos determinism smoke, the
# crash/resume smoke, and the telemetry bench guard. Mirrored by
# .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")"

echo "== fmt =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== doc tests =="
cargo test -q --doc

echo "== clippy =="
cargo clippy --all-targets -- -D warnings

echo "== chaos smoke: identical seeds => identical output =="
chaos_a="$(mktemp)"
chaos_b="$(mktemp)"
trap 'rm -f "$chaos_a" "$chaos_b"' EXIT
cargo run -q --release --example chaos -- --seed 7 > "$chaos_a"
cargo run -q --release --example chaos -- --seed 7 > "$chaos_b"
diff -u "$chaos_a" "$chaos_b"
grep -q "dataset fingerprint" "$chaos_a"

echo "== breaker smoke: quarantine under hostile chaos is deterministic =="
breaker_a="$(mktemp)"
breaker_b="$(mktemp)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"' EXIT
cargo run -q --release --example chaos -- --seed 3 --profile hostile --scale 0.01 --breaker > "$breaker_a"
cargo run -q --release --example chaos -- --seed 3 --profile hostile --scale 0.01 --breaker > "$breaker_b"
diff -u "$breaker_a" "$breaker_b"
grep -q "circuit breakers" "$breaker_a"

echo "== resume smoke: crash at half-campaign, resume, identical fingerprint =="
resume_dir="$(mktemp -d)"
trap 'rm -f "$chaos_a" "$chaos_b" "$breaker_a" "$breaker_b"; rm -rf "$resume_dir"' EXIT
# Full uninterrupted run: the reference fingerprint.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/full.journal" > "$resume_dir/full.out"
# Crash hard (exit 9) mid-campaign; the journal survives.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/crash.journal" --crash-after 200 > "$resume_dir/crash.out" || true
# Resume from the journal and finish.
cargo run -q --release --example resume -- --seed 7 --scale 0.01 \
    --journal "$resume_dir/crash.journal" --resume > "$resume_dir/resumed.out"
full_fp="$(grep 'dataset fingerprint' "$resume_dir/full.out")"
resumed_fp="$(grep 'dataset fingerprint' "$resume_dir/resumed.out")"
[ -n "$full_fp" ] && [ "$full_fp" = "$resumed_fp" ] || {
    echo "resume smoke: fingerprints differ" >&2
    echo "  full:    $full_fp" >&2
    echo "  resumed: $resumed_fp" >&2
    exit 1
}
grep -q "probes replayed" "$resume_dir/resumed.out"

echo "== bench guard: telemetry hot path =="
# The vendored criterion stand-in prints one "ns/iter" line per bench;
# keep the numbers as a machine-readable artifact for trend-watching.
cargo bench -q -p govdns-bench --bench telemetry | tee /dev/stderr | awk '
    BEGIN { print "{"; first = 1 }
    / ns\/iter / {
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": %s", $2, $3
    }
    END { if (!first) printf "\n"; print "}" }
' > BENCH_telemetry.json
python3 -c "import json; d = json.load(open('BENCH_telemetry.json')); assert d, 'no benches parsed'" \
    || { echo "bench guard: BENCH_telemetry.json is empty or invalid" >&2; exit 1; }

echo "ci: all green"
