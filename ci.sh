#!/usr/bin/env bash
# Local CI gate: release build, full test suite, and warning-free clippy.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "ci: all green"
