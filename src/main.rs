//! The `govdns` command-line tool: generate a calibrated world, run the
//! measurement campaign, and query the results — the operational face of
//! the library.

use std::process::ExitCode;

use govdns::core::analysis::remedies;
use govdns::prelude::*;
use govdns::world::CountryCode;

const USAGE: &str = "\
govdns — government-DNS measurement pipeline (DSN 2022 reproduction)

USAGE:
    govdns <command> [options]

COMMANDS:
    audit                 regenerate every table and figure of the paper
    hijack                list registrable dangling NS domains with prices
    country <iso2>        one-country health report
    remedies [iso2]       remediation plans for broken domains
    check <zonefile>      lint a zone master file (parse + local checks)

OPTIONS:
    --scale <f>           fraction of paper scale (default 0.05)
    --seed <n>            world seed (default 42)
    --loss <f>            network packet-loss rate (default 0)
    --workers <n>         probe workers (default 8)
";

struct Options {
    scale: f64,
    seed: u64,
    loss: f64,
    workers: usize,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { scale: 0.05, seed: 42, loss: 0.0, workers: 8, positional: Vec::new() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Result<Option<f64>, String> {
            if arg == name {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<f64>()
                    .map_err(|_| format!("{name} needs a number"))?;
                Ok(Some(v))
            } else {
                Ok(None)
            }
        };
        if let Some(v) = flag("--scale")? {
            opts.scale = v;
        } else if let Some(v) = flag("--seed")? {
            opts.seed = v as u64;
        } else if let Some(v) = flag("--loss")? {
            opts.loss = v;
        } else if let Some(v) = flag("--workers")? {
            opts.workers = v as usize;
        } else if arg.starts_with("--") {
            return Err(format!("unknown option {arg}"));
        } else {
            opts.positional.push(arg.clone());
        }
    }
    Ok(opts)
}

fn build_report(opts: &Options) -> Report {
    eprintln!("generating world (scale {}, seed {}, loss {})...", opts.scale, opts.seed, opts.loss);
    let world = WorldGenerator::new(
        WorldConfig::small(opts.seed).with_scale(opts.scale).with_loss_rate(opts.loss),
    )
    .generate();
    eprintln!("running campaign...");
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    Report::generate(&campaign, RunnerConfig { workers: opts.workers, ..RunnerConfig::default() })
}

fn cmd_audit(opts: &Options) -> ExitCode {
    let report = build_report(opts);
    println!("{}", report.render());
    ExitCode::SUCCESS
}

fn cmd_hijack(opts: &Options) -> ExitCode {
    let report = build_report(opts);
    let d = &report.delegation;
    for a in &d.available {
        println!(
            "{}\t{:.2} USD\t{} domains\t{} countries",
            a.name,
            a.price_usd,
            a.affected.len(),
            a.countries.len()
        );
    }
    eprintln!(
        "{} registrable d_ns over {} domains in {} countries",
        d.available.len(),
        d.affected_domains,
        d.affected_countries
    );
    if d.available.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Non-zero so scripts can alert on exposure.
        ExitCode::from(2)
    }
}

fn cmd_country(opts: &Options) -> ExitCode {
    let Some(code) = opts.positional.get(1) else {
        eprintln!("country needs an ISO code");
        return ExitCode::FAILURE;
    };
    let Ok(code) = code.parse::<CountryCode>() else {
        eprintln!("`{code}` is not an ISO alpha-2 code");
        return ExitCode::FAILURE;
    };
    let report = build_report(opts);
    let probes: Vec<_> =
        report.dataset.probes_with_country().filter(|&(_, c)| c == code).map(|(p, _)| p).collect();
    let responsive = probes.iter().filter(|p| p.parent_nonempty()).count();
    let defective = probes.iter().filter(|p| p.defective().0).count();
    let single = probes.iter().filter(|p| p.parent_nonempty() && p.ns_union().len() == 1).count();
    println!("country: {code}");
    println!("probed: {}  responsive: {responsive}", probes.len());
    println!("defective delegations: {defective}");
    println!("single-nameserver domains: {single}");
    ExitCode::SUCCESS
}

fn cmd_remedies(opts: &Options) -> ExitCode {
    let filter: Option<CountryCode> = opts.positional.get(1).and_then(|s| s.parse().ok());
    let world = WorldGenerator::new(
        WorldConfig::small(opts.seed).with_scale(opts.scale).with_loss_rate(opts.loss),
    )
    .generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(
        &campaign,
        RunnerConfig { workers: opts.workers, ..RunnerConfig::default() },
    );
    let mut printed = 0;
    for (probe, country) in report.dataset.probes_with_country() {
        if filter.is_some_and(|c| c != country) || !probe.parent_nonempty() {
            continue;
        }
        let plan = remedies::plan_for(probe, &campaign);
        if plan.is_empty() {
            continue;
        }
        println!("{} ({country}):", plan.domain);
        for r in &plan.remedies {
            println!("  - {r:?}");
        }
        printed += 1;
        if printed >= 50 {
            println!("... (truncated at 50 domains)");
            break;
        }
    }
    eprintln!(
        "{} of {} domains need action",
        report.remedies.needing_action, report.remedies.domains
    );
    ExitCode::SUCCESS
}

fn cmd_check(opts: &Options) -> ExitCode {
    let Some(path) = opts.positional.get(1) else {
        eprintln!("check needs a zone-file path");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match govdns::model::zonefile::parse(&text) {
        Ok(zone) => {
            println!("{}: OK — origin {}, {} rrsets", path, zone.origin(), zone.rrset_count());
            // The lint the paper would have loved: single-label NS
            // targets are almost always trailing-dot typos.
            let mut warnings = 0;
            for set in zone.iter() {
                for target in set.ns_targets() {
                    if target.level() == 1 {
                        println!(
                            "warning: NS target `{target}` at {} is a single label — \
                             likely a trailing-dot typo",
                            set.name()
                        );
                        warnings += 1;
                    }
                }
            }
            if warnings > 0 {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match opts.positional.first().map(String::as_str) {
        Some("audit") => cmd_audit(&opts),
        Some("hijack") => cmd_hijack(&opts),
        Some("country") => cmd_country(&opts),
        Some("remedies") => cmd_remedies(&opts),
        Some("check") => cmd_check(&opts),
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let o = parse_args(&args(&["audit", "--scale", "0.2", "--seed", "9", "--loss", "0.1"]))
            .unwrap();
        assert_eq!(o.positional, vec!["audit"]);
        assert_eq!(o.scale, 0.2);
        assert_eq!(o.seed, 9);
        assert_eq!(o.loss, 0.1);
        assert_eq!(o.workers, 8);
    }

    #[test]
    fn positional_order_is_preserved() {
        let o = parse_args(&args(&["country", "br", "--workers", "2"])).unwrap();
        assert_eq!(o.positional, vec!["country", "br"]);
        assert_eq!(o.workers, 2);
    }

    #[test]
    fn rejects_unknown_and_valueless_flags() {
        assert!(parse_args(&args(&["--nope"])).is_err());
        assert!(parse_args(&args(&["--scale"])).is_err());
        assert!(parse_args(&args(&["--seed", "abc"])).is_err());
    }
}
