//! # govdns
//!
//! A full reproduction of *"A Comprehensive, Longitudinal Study of
//! Government DNS Deployment at Global Scale"* (DSN 2022) as a Rust
//! workspace: the paper's measurement pipeline plus every substrate it
//! needs, simulated and calibrated to the published aggregates.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`model`] — DNS data model (names, records, zones, messages, wire
//!   format),
//! * [`simnet`] — the simulated internet of authoritative servers,
//! * [`pdns`] — the passive-DNS database and sensor feed,
//! * [`world`] — the calibrated synthetic e-government world generator,
//! * [`core`] — the measurement pipeline and the §IV analyses,
//! * [`telemetry`] — pipeline observability: metrics, span timing, and
//!   the §III-D query ledger,
//! * [`trace`] — the flight recorder: per-query trace events, causal
//!   domain timelines, and last-N dumps on breaker trips and panics,
//! * [`diff`] — cross-run comparison: class transitions, trace
//!   first-divergence forensics, and the replayable regression corpus,
//! * [`counterfactual`] — what-if resilience analysis: provider / ASN /
//!   prefix / ccTLD outage scenarios replayed over the pipeline and
//!   ranked into a single-points-of-failure report,
//! * [`smell`] — operational smell detection: per-smell detectors over
//!   the measured delegation graph, each verdict scored deterministically
//!   and citing the flight-recorder events that prove it.
//!
//! ## Quickstart
//!
//! ```
//! use govdns::prelude::*;
//!
//! // A small world (1% of paper scale keeps the doctest fast).
//! let world = WorldGenerator::new(WorldConfig::small(7).with_scale(0.01)).generate();
//! let matchers = world.catalog.matchers();
//! let campaign = Campaign::new(&world, &matchers);
//! let report = Report::generate(&campaign, RunnerConfig::default());
//!
//! assert_eq!(report.dataset.seeds.len(), 193);
//! assert!(report.active_replication.multi_ns_share > 90.0);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use govdns_core as core;
pub use govdns_counterfactual as counterfactual;
pub use govdns_diff as diff;
pub use govdns_model as model;
pub use govdns_pdns as pdns;
pub use govdns_simnet as simnet;
pub use govdns_smell as smell;
pub use govdns_telemetry as telemetry;
pub use govdns_trace as trace;
pub use govdns_world as world;

/// The types most programs need.
pub mod prelude {
    pub use govdns_core::report::Report;
    pub use govdns_core::{
        BreakerPolicy, Campaign, CampaignTelemetry, ChaosSpec, JournalReplay, JournalSpec,
        MeasurementDataset, RetryPolicy, RunnerConfig, ScenarioSpec,
    };
    pub use govdns_counterfactual::{run_sweep, SpofReport, SweepConfig};
    pub use govdns_diff::{
        CorpusCase, DatasetView, RenderOptions, ReplaySetup, RunDiff, TraceDiff,
    };
    pub use govdns_model::{DateRange, DomainName, RecordType, SimDate};
    pub use govdns_simnet::ChaosProfile;
    pub use govdns_smell::{SmellKind, SmellReport, SmellVerdict};
    pub use govdns_telemetry::{ProgressEvent, Registry, TelemetrySnapshot};
    pub use govdns_trace::{read_trace, TraceLog, TraceSpec};
    pub use govdns_world::{World, WorldConfig, WorldGenerator};
}
