//! Chaos-hardened probing: run the full pipeline against an internet
//! with injected faults (flapping servers, packet loss, REFUSED bursts,
//! truncation, latency spikes) and show what the adaptive retry policy
//! and the second probe round recover.
//!
//! ```sh
//! cargo run --release --example chaos -- --seed 7 [--profile flaky|congested|hostile] [--scale 0.02] [--breaker]
//! ```
//!
//! The output is fully deterministic for a given `(seed, profile,
//! scale)`: the fault plan, the retry schedule, and the resulting
//! dataset are all pure functions of the seeds. Running twice and
//! diffing the output is the CI smoke test for that property.

use govdns::prelude::*;

/// FNV-1a over the canonical dataset encoding: a compact fingerprint
/// two runs can be compared by.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut seed = 7u64;
    let mut profile = ChaosProfile::Flaky;
    let mut scale = 0.02f64;
    let mut breaker = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--profile" => {
                let name = args.next().expect("--profile NAME");
                profile = ChaosProfile::parse(&name)
                    .unwrap_or_else(|| panic!("unknown profile {name:?}"));
            }
            "--scale" => scale = args.next().and_then(|s| s.parse().ok()).expect("--scale F"),
            "--breaker" => breaker = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    // One worker keeps the query interleaving (and hence burst-triggered
    // faults and per-worker caches) deterministic.
    let config = RunnerConfig {
        workers: 1,
        retry: RetryPolicy::adaptive(),
        chaos: Some(ChaosSpec { profile, seed }),
        breaker: if breaker { BreakerPolicy::guarded() } else { BreakerPolicy::none() },
        ..RunnerConfig::default()
    };
    let report = Report::generate(&campaign, config);

    println!("chaos profile: {profile} (seed {seed}, scale {scale})");
    println!();
    println!("== collection funnel ==");
    println!("queried:            {}", report.funnel.queried);
    println!("parent-responsive:  {}", report.funnel.parent_responsive);
    println!("parent-nonempty:    {}", report.funnel.parent_nonempty);
    println!("child-responsive:   {}", report.funnel.child_responsive);
    println!("second-round probes: {}", report.dataset.retried);
    println!();
    println!("== injected faults ==");
    let f = &report.dataset.faults;
    println!("flap timeouts: {}", f.flap_timeouts);
    println!("losses:        {}", f.losses);
    println!("refused:       {}", f.refused);
    println!("truncated:     {}", f.truncated);
    println!("delayed:       {}", f.delayed);
    println!("outcome-changing total: {}", f.injected());
    println!();
    println!("== measurement health ==");
    let h = &report.health;
    println!("degraded domains:    {} ({:.1}% of responsive)", h.degraded_domains, h.degraded_pct);
    println!("recovered in round 2: {}", h.recovered_in_round2);
    println!("retry attempts:      {}", h.retry_attempts);
    println!("retry recovered:     {}", h.retry_recovered);
    println!("retry exhausted:     {}", h.retry_exhausted);
    println!("retry budget denied: {}", h.retry_budget_denied);
    if !h.flaky_countries.is_empty() {
        println!("flakiest countries (responsive/degraded):");
        for &(c, total, degraded) in &h.flaky_countries {
            println!("  {c}  {total}/{degraded}");
        }
    }
    if breaker {
        println!();
        println!("== circuit breakers ==");
        println!("tripped:          {}", h.breaker_tripped);
        println!("exchanges denied: {}", h.breaker_denied);
        println!("reclosed:         {}", h.breaker_reclosed);
        println!("reopened:         {}", h.breaker_reopened);
        if !h.quarantined.is_empty() {
            println!("quarantined destinations (denied exchanges):");
            for (dst, denied) in &h.quarantined {
                println!("  {dst}  {denied}");
            }
        }
    }
    println!();
    println!("== remediation ==");
    println!("flakiness follow-ups: {}", report.remedies.flakiness_followups);
    println!("quarantine follow-ups: {}", report.remedies.quarantine_followups);
    println!();
    let json = report.dataset.canonical_json();
    println!(
        "dataset fingerprint: {:016x} ({} bytes canonical)",
        fnv64(json.as_bytes()),
        json.len()
    );
}
