//! Cross-run diffing CLI: record runs, compare them, replay the corpus.
//!
//! **Run mode**: run a replay-safe traced chaos campaign and archive its
//! comparable artifacts into a directory:
//!
//! ```sh
//! cargo run --release --example diff -- run --seed 7 [--workers 8] [--scale 0.02] \
//!     --out runs/a [--corpus-dir corpus] [--case NAME]
//! ```
//!
//! The directory gets `dataset.json` (canonical dataset), `run.trace`
//! (flight-recorder file), `telemetry.json`, `remedies.json`, and
//! `smells.json` (trace-cited operational smell verdicts). The
//! campaign uses the worker-count-invariant configuration (flaky chaos,
//! no breakers, unlimited retry budget), so two runs with the same seed
//! archive byte-identical artifacts at any worker count. If an analysis
//! stage fails (e.g. under `GOVDNS_FAIL_ANALYSIS=providers`), the
//! offending domains are captured into `corpus/<case>.json`.
//!
//! **Diff mode**: compare two archived runs:
//!
//! ```sh
//! cargo run --release --example diff -- diff runs/a runs/b \
//!     [--domain NAME] [--only-changed] [--telemetry] [--json] [--gate]
//! ```
//!
//! Output (text or `--json`) is a deterministic function of the two
//! directories — CI runs the same comparison twice and byte-compares.
//! `--gate` exits nonzero when the runs differ.
//!
//! **Replay mode**: re-execute a regression-corpus case against a fresh
//! simnet and byte-compare the replayed trace blocks to the recording:
//!
//! ```sh
//! cargo run --release --example diff -- replay corpus/case.json
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use govdns::core::BreakerPolicy;
use govdns::diff::{
    counts_from_json, remedies_delta, telemetry_from_json, CorpusCase, DatasetView, RenderOptions,
    ReplaySetup, RunDiff, SmellView, TraceDiff,
};
use govdns::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        Some("diff") => diff_mode(&args[1..]),
        Some("replay") => replay_mode(&args[1..]),
        _ => {
            eprintln!("usage: diff <run|diff|replay> [options]  (see the module docs)");
            ExitCode::from(2)
        }
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).unwrap_or_else(|| panic!("{flag} needs a value")).clone()
}

// ---------------------------------------------------------------- run

struct RunArgs {
    seed: u64,
    workers: usize,
    scale_ppm: u64,
    out: PathBuf,
    corpus_dir: Option<PathBuf>,
    case: Option<String>,
}

fn run_mode(args: &[String]) -> ExitCode {
    let mut parsed = RunArgs {
        seed: 7,
        workers: 1,
        scale_ppm: 20_000,
        out: PathBuf::from("run-archive"),
        corpus_dir: None,
        case: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => parsed.seed = take_value(args, &mut i, "--seed").parse().expect("--seed N"),
            "--workers" => {
                parsed.workers =
                    take_value(args, &mut i, "--workers").parse().expect("--workers N");
            }
            "--scale" => {
                let scale: f64 = take_value(args, &mut i, "--scale").parse().expect("--scale F");
                parsed.scale_ppm = (scale * 1_000_000.0).round() as u64;
            }
            "--out" => parsed.out = PathBuf::from(take_value(args, &mut i, "--out")),
            "--corpus-dir" => {
                parsed.corpus_dir = Some(PathBuf::from(take_value(args, &mut i, "--corpus-dir")));
            }
            "--case" => parsed.case = Some(take_value(args, &mut i, "--case")),
            other => panic!("unknown run argument {other:?}"),
        }
        i += 1;
    }

    let scale = parsed.scale_ppm as f64 / 1_000_000.0;
    let world = WorldGenerator::new(WorldConfig::small(parsed.seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    std::fs::create_dir_all(&parsed.out).expect("create output directory");
    let trace_path = parsed.out.join("run.trace");

    // The worker-count-invariant configuration (see examples/trace.rs):
    // flaky chaos, no breakers, unlimited retry budget. Both the trace
    // file and the canonical dataset are byte-identical at any worker
    // count, which is what makes archived runs comparable at all.
    let retry = RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() };
    let config = RunnerConfig {
        workers: parsed.workers,
        retry,
        chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: parsed.seed }),
        breaker: BreakerPolicy::none(),
        trace: Some(TraceSpec::new(&trace_path).with_seed(parsed.seed)),
        ..RunnerConfig::default()
    };
    let max_qps = config.max_qps;
    let second_round = config.second_round;
    let flight_capacity =
        config.trace.as_ref().map_or(govdns::trace::DEFAULT_FLIGHT_CAPACITY, |t| t.flight_capacity);
    let ctl = CampaignTelemetry::new();
    let report = Report::generate_with(&campaign, config, &ctl);

    std::fs::write(parsed.out.join("dataset.json"), report.dataset.canonical_json())
        .expect("write dataset.json");
    std::fs::write(parsed.out.join("telemetry.json"), report.dataset.telemetry.to_json())
        .expect("write telemetry.json");
    std::fs::write(parsed.out.join("remedies.json"), remedies_json(&report))
        .expect("write remedies.json");
    let smells = SmellReport::from_analysis(&report.smells, parsed.seed, parsed.scale_ppm);
    std::fs::write(parsed.out.join("smells.json"), smells.canonical_json())
        .expect("write smells.json");

    println!("archived run: seed {}, scale_ppm {}", parsed.seed, parsed.scale_ppm);
    println!("domains measured:  {}", report.funnel.queried);
    println!("degraded domains:  {}", report.health.degraded_domains);
    println!("analysis failures: {}", report.analysis_failures.len());

    if !report.analysis_failures.is_empty() {
        if let Some(dir) = &parsed.corpus_dir {
            let trigger: Vec<String> = report
                .analysis_failures
                .iter()
                .map(|f| format!("analysis_panic:{}", f.stage))
                .collect();
            let name = parsed.case.unwrap_or_else(|| format!("seed{}-fail", parsed.seed));
            let setup = ReplaySetup {
                world_seed: parsed.seed,
                scale_ppm: parsed.scale_ppm,
                chaos: Some((ChaosProfile::Flaky, parsed.seed)),
                max_qps,
                retry,
                second_round,
                flight_capacity,
            };
            let log = read_trace(&trace_path).expect("trace file written by the campaign");
            match CorpusCase::capture(&name, &trigger.join(","), &setup, &report, &log) {
                Ok(case) => {
                    let path = case.save(dir).expect("write corpus case");
                    println!(
                        "corpus case captured: {} ({} domains)",
                        path.display(),
                        case.domains.len()
                    );
                }
                Err(reason) => println!("corpus capture skipped: {reason}"),
            }
        }
    }
    ExitCode::SUCCESS
}

/// `remedies.json`: the report's remediation tallies as a flat,
/// fixed-order count map.
fn remedies_json(report: &Report) -> String {
    let r = &report.remedies;
    format!(
        "{{\"needing_action\":{},\"domains\":{},\"removals\":{},\"ns_fixes\":{},\
         \"synchronizations\":{},\"hijack_exposures\":{},\"placement_advice\":{},\
         \"flakiness_followups\":{},\"quarantine_followups\":{}}}",
        r.needing_action,
        r.domains,
        r.removals,
        r.ns_fixes,
        r.synchronizations,
        r.hijack_exposures,
        r.placement_advice,
        r.flakiness_followups,
        r.quarantine_followups,
    )
}

// --------------------------------------------------------------- diff

fn diff_mode(args: &[String]) -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut opts = RenderOptions::default();
    let mut json = false;
    let mut telemetry = false;
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--domain" => opts.domain = Some(take_value(args, &mut i, "--domain")),
            "--only-changed" => opts.only_changed = true,
            "--json" => json = true,
            "--telemetry" => telemetry = true,
            "--gate" => gate = true,
            dir if !dir.starts_with("--") => dirs.push(PathBuf::from(dir)),
            other => panic!("unknown diff argument {other:?}"),
        }
        i += 1;
    }
    let [a, b] = dirs.as_slice() else {
        eprintln!(
            "usage: diff A_DIR B_DIR [--domain D] [--only-changed] [--telemetry] [--json] [--gate]"
        );
        return ExitCode::from(2);
    };

    let diff = match build_diff(a, b, telemetry) {
        Ok(diff) => diff,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", diff.to_json());
    } else {
        print!("{}", diff.render_text(&opts));
    }
    if gate && !diff.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn build_diff(a: &Path, b: &Path, telemetry: bool) -> Result<RunDiff, String> {
    let read = |path: PathBuf| -> Result<String, String> {
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let view_a = DatasetView::from_canonical_json(&read(a.join("dataset.json"))?)?;
    let view_b = DatasetView::from_canonical_json(&read(b.join("dataset.json"))?)?;
    let mut diff = RunDiff { dataset: view_a.diff(&view_b), ..RunDiff::default() };

    let remedies_a = a.join("remedies.json");
    let remedies_b = b.join("remedies.json");
    if remedies_a.exists() && remedies_b.exists() {
        diff.remedies = remedies_delta(
            &counts_from_json(&read(remedies_a)?)?,
            &counts_from_json(&read(remedies_b)?)?,
        );
    }

    let smells_a = a.join("smells.json");
    let smells_b = b.join("smells.json");
    if smells_a.exists() && smells_b.exists() {
        let view_a = SmellView::from_canonical_json(&read(smells_a)?)?;
        let view_b = SmellView::from_canonical_json(&read(smells_b)?)?;
        diff.smells = Some(view_a.diff(&view_b));
    }

    let trace_a = a.join("run.trace");
    let trace_b = b.join("run.trace");
    if trace_a.exists() && trace_b.exists() {
        let (log_a, log_b) = govdns::trace::read_trace_pair(&trace_a, &trace_b)
            .map_err(|e| format!("trace files: {e}"))?;
        diff.trace = Some(TraceDiff::compare(&log_a, &log_b));
    }

    if telemetry {
        diff.telemetry = Some(
            telemetry_from_json(&read(a.join("telemetry.json"))?)?
                .delta(&telemetry_from_json(&read(b.join("telemetry.json"))?)?),
        );
    }
    Ok(diff)
}

// ------------------------------------------------------------- replay

fn replay_mode(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            other if !other.starts_with("--") => paths.push(PathBuf::from(other)),
            other => panic!("unknown replay argument {other:?}"),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: replay CASE.json [CASE.json ...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let case = match CorpusCase::load(path) {
            Ok(case) => case,
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        };
        println!(
            "replaying {}: trigger {}, {} domains, world seed {}",
            case.name,
            case.trigger,
            case.domains.len(),
            case.setup.world_seed
        );
        match case.replay() {
            Ok(outcome) if outcome.is_clean() => {
                println!("  byte-identical: {} of {} domains", outcome.matched, outcome.domains);
            }
            Ok(outcome) => {
                failed = true;
                println!(
                    "  MISMATCH: {} of {} domains diverged",
                    outcome.mismatches.len(),
                    outcome.domains
                );
                for m in &outcome.mismatches {
                    println!("  {}: {}", m.domain, m.detail);
                }
            }
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
