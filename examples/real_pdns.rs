//! Bring-your-own passive DNS: run the longitudinal analyses over a real
//! passive-DNS export (the TSV format documented in
//! `govdns::pdns::export`) instead of the simulated feed.
//!
//! ```sh
//! cargo run --release --example real_pdns my-dnsdb-export.tsv gov.br:br gov.au:au
//! ```
//!
//! Each extra argument names a seed as `<d_gov>:<iso2>`. Without
//! arguments, a small embedded sample demonstrates the flow.

use govdns::core::analysis::longitudinal::Longitudinal;
use govdns::core::analysis::replication::{SingleNsChurn, YearlyTotals};
use govdns::core::seed::{SeedDomain, SeedKind, SeedProvenance};
use govdns::core::Campaign;
use govdns::model::SimDate;
use govdns::pdns::export;
use govdns::world::CountryCode;

const SAMPLE: &str = "\
# embedded demo export
2011-02-01\t2021-01-15\t900\tportal.gov.xx\tNS\tns1.portal.gov.xx
2011-02-01\t2016-06-01\t310\tportal.gov.xx\tNS\tns2.portal.gov.xx
2016-06-02\t2021-01-15\t410\tportal.gov.xx\tNS\tben.ns.cloudflare.com
2012-05-01\t2021-01-15\t700\ttax.gov.xx\tNS\tns-12.awsdns-03.net
2012-05-01\t2021-01-15\t700\ttax.gov.xx\tNS\tns-13.awsdns-44.org
2013-01-01\t2014-02-01\t40\told.gov.xx\tNS\tns1.old.gov.xx
2015-08-01\t2021-01-15\t520\tcensus.gov.xx\tNS\tns1.census.gov.xx
";

fn main() {
    let mut args = std::env::args().skip(1);
    let (text, seeds): (String, Vec<SeedDomain>) = match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let seeds: Vec<SeedDomain> = args
                .map(|spec| {
                    let (name, cc) = spec.split_once(':').unwrap_or_else(|| {
                        eprintln!("seed `{spec}` must be <d_gov>:<iso2>");
                        std::process::exit(2);
                    });
                    SeedDomain {
                        country: cc.parse::<CountryCode>().unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        }),
                        name: name.parse().unwrap_or_else(|e| {
                            eprintln!("bad seed domain `{name}`: {e}");
                            std::process::exit(2);
                        }),
                        kind: SeedKind::ReservedSuffix,
                        earliest_government_use: None,
                        provenance: SeedProvenance::PortalLink,
                        portal_resolved: true,
                    }
                })
                .collect();
            (text, seeds)
        }
        None => {
            eprintln!("(no file given — using the embedded sample with seed gov.xx)");
            (
                SAMPLE.to_owned(),
                vec![SeedDomain {
                    country: CountryCode::new("xx"),
                    name: "gov.xx".parse().expect("static name"),
                    kind: SeedKind::ReservedSuffix,
                    earliest_government_use: None,
                    provenance: SeedProvenance::PortalLink,
                    portal_resolved: true,
                }],
            )
        }
    };

    let pdns = export::from_tsv(&text).unwrap_or_else(|e| {
        eprintln!("export parse error: {e}");
        std::process::exit(1);
    });
    eprintln!("loaded {} passive-DNS entries", pdns.len());

    // A campaign over the real data: no network, no registrar — only the
    // PDNS-driven analyses run.
    let network = govdns::simnet::SimNetwork::new(0);
    let fixture_roots = vec![std::net::Ipv4Addr::new(127, 0, 0, 1)];
    let unkb = govdns::world::UnKnowledgeBase::new();
    let docs = govdns::world::RegistryDocs::new();
    let webarchive = govdns::world::WebArchive::new();
    let asn_db = govdns::simnet::AsnDb::new();
    let registrar = govdns::world::Registrar::new();
    let countries = govdns::world::countries();
    let campaign = Campaign {
        unkb: &unkb,
        registry_docs: &docs,
        webarchive: &webarchive,
        pdns: &pdns,
        network: &network,
        roots: &fixture_roots,
        asn_db: &asn_db,
        registrar: &registrar,
        matchers: &[],
        countries: &countries,
        collection_date: SimDate::from_ymd(2021, 4, 15),
    };

    let lon = Longitudinal::build(&campaign, &seeds);
    eprintln!("{} domains under the given seeds", lon.histories.len());

    println!("== domains / countries / nameservers per year ==");
    println!("{}", YearlyTotals::compute(&lon).table().to_text());
    println!("== single-NS cohort churn ==");
    println!("{}", SingleNsChurn::compute(&lon).table().to_text());
}
