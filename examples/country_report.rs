//! Country deep-dive: everything the pipeline knows about one country's
//! government DNS — its seed, discovered zones, replication, defects,
//! consistency, and provider history.
//!
//! ```sh
//! cargo run --release --example country_report <iso2> [scale] [seed]
//! cargo run --release --example country_report br 0.05
//! ```

use govdns::core::analysis::consistency::classify;
use govdns::core::analysis::longitudinal::Longitudinal;
use govdns::prelude::*;
use govdns::world::CountryCode;

fn main() {
    let mut args = std::env::args().skip(1);
    let code = args.next().unwrap_or_else(|| "br".to_owned());
    let Ok(code) = code.parse::<CountryCode>() else {
        eprintln!("usage: country_report <iso2> [scale] [seed]");
        std::process::exit(2);
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(55);

    eprintln!("generating world (scale {scale})...");
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());

    let country = world.country(code).expect("ISO code belongs to a UN member");
    let seed_domain =
        report.dataset.seeds.iter().find(|s| s.country == code).expect("every country has a seed");
    println!("{} ({}) — {}", country.name, code, country.sub_region);
    println!("seed domain: {} ({:?})", seed_domain.name, seed_domain.kind);

    let probes: Vec<_> =
        report.dataset.probes_with_country().filter(|&(_, c)| c == code).map(|(p, _)| p).collect();
    let responsive: Vec<_> = probes.iter().filter(|p| p.parent_nonempty()).collect();
    println!("domains probed: {}   with live delegation: {}", probes.len(), responsive.len());

    let single = responsive.iter().filter(|p| p.ns_union().len() == 1).count();
    let defective = responsive.iter().filter(|p| p.defective().0).count();
    let full = responsive.iter().filter(|p| p.defective().1).count();
    let disagree = responsive
        .iter()
        .filter(|p| {
            classify(p)
                .is_some_and(|c| c != govdns::core::analysis::consistency::ConsistencyClass::Equal)
        })
        .count();
    println!("single-nameserver domains: {single}");
    println!("defective delegations: {defective} (fully dead: {full})");
    println!("parent/child disagreements: {disagree}");

    // Worst offenders.
    println!("\nmost fragile domains:");
    let mut worst: Vec<_> = responsive
        .iter()
        .filter(|p| p.defective().0)
        .map(|p| {
            let dead = p.servers.iter().filter(|s| s.is_defective()).count();
            (dead, p.servers.len(), &p.domain)
        })
        .collect();
    worst.sort_by_key(|&(dead, total, _)| std::cmp::Reverse((dead * 100) / total.max(1)));
    for (dead, total, domain) in worst.into_iter().take(10) {
        println!("  {domain}: {dead}/{total} nameservers defective");
    }

    // Ten-year deployment history.
    let lon = Longitudinal::build(&campaign, &report.dataset.seeds);
    println!("\nPDNS history (domains seen per year):");
    for year in Longitudinal::years() {
        let n = lon.active_in_year(year).filter(|h| h.country == code).count();
        let bar = "#".repeat((n / 2).min(60));
        println!("  {year}: {n:>5} {bar}");
    }
}
