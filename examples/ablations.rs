//! Ablations: quantify the design choices the paper (and DESIGN.md) call
//! out — the second probe round, sensor coverage, and packet loss — by
//! running the pipeline with each knob toggled and diffing the outcomes.
//!
//! ```sh
//! cargo run --release --example ablations [scale] [seed]
//! ```

use govdns::core::discovery::{discover, DiscoveryConfig};
use govdns::core::seed::select_seeds;
use govdns::prelude::*;
use govdns::world::{SensorConfig, WorldGenerator as WG};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    println!("== ablation 1: the second probe round under packet loss ==");
    println!("The paper re-ran queries for domains whose nameservers all stayed");
    println!("silent, to separate transient failures from stale records.\n");
    println!("{:>6}  {:>12}  {:>12}  {:>8}", "loss", "stale w/o", "stale with", "rescued");
    for loss in [0.0, 0.1, 0.25] {
        let world =
            WG::new(WorldConfig::small(seed).with_scale(scale).with_loss_rate(loss)).generate();
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let stale_without = {
            let r = Report::generate(
                &campaign,
                RunnerConfig { second_round: false, ..RunnerConfig::default() },
            );
            r.funnel.parent_nonempty - r.funnel.child_responsive
        };
        // A fresh world so network accounting starts clean.
        let world2 =
            WG::new(WorldConfig::small(seed).with_scale(scale).with_loss_rate(loss)).generate();
        let matchers2 = world2.catalog.matchers();
        let campaign2 = Campaign::new(&world2, &matchers2);
        let stale_with = {
            let r = Report::generate(
                &campaign2,
                RunnerConfig { second_round: true, ..RunnerConfig::default() },
            );
            r.funnel.parent_nonempty - r.funnel.child_responsive
        };
        println!(
            "{:>5.0}%  {:>12}  {:>12}  {:>8}",
            loss * 100.0,
            stale_without,
            stale_with,
            stale_without.saturating_sub(stale_with)
        );
    }
    println!("\nWithout retries, loss inflates the apparent stale-domain count; the");
    println!("second round recovers the false positives, as the paper intended.\n");

    println!("== ablation 2: sensor coverage vs. discovery ==");
    println!("The DNSDB only sees what flows past its sensors; discovery recall");
    println!("degrades gracefully with coverage.\n");
    println!("{:>9}  {:>11}", "coverage", "discovered");
    for coverage in [1.0, 0.95, 0.85, 0.7, 0.5] {
        let sensor = if coverage >= 1.0 {
            SensorConfig::perfect()
        } else {
            SensorConfig { coverage, ..SensorConfig::realistic() }
        };
        let world =
            WG::new(WorldConfig::small(seed).with_scale(scale).with_sensor(sensor)).generate();
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let seeds = select_seeds(&campaign);
        let found =
            discover(&campaign, &seeds, DiscoveryConfig::paper(world.collection_date)).len();
        println!("{:>8.0}%  {:>11}", coverage * 100.0, found);
    }

    println!("\n== ablation 3: the 7-day stability filter ==");
    println!("Without it, transient records flood the studied population.\n");
    let world = WG::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let seeds = select_seeds(&campaign);
    let filtered = discover(&campaign, &seeds, DiscoveryConfig::paper(world.collection_date)).len();
    // Count raw window hits without the stability rule.
    let window = DiscoveryConfig::paper(world.collection_date).window;
    let mut raw = std::collections::BTreeSet::new();
    for s in &seeds {
        for e in world.pdns.search_subtree_in(&s.name, window, Some(RecordType::Ns)) {
            raw.insert(e.name.clone());
        }
    }
    println!("raw window hits:   {}", raw.len());
    println!("after filters:     {filtered}");
    println!(
        "transient records dropped: {} ({:.1}% of raw)",
        raw.len() - filtered,
        100.0 * (raw.len() - filtered) as f64 / raw.len().max(1) as f64
    );
}
