//! Longitudinal: the ten-year passive-DNS story — growth, the single-NS
//! cohort's churn, private-deployment shares, and the centralization of
//! the provider market (Figs 2, 3, 6, 7; Tables II–III).
//!
//! ```sh
//! cargo run --release --example longitudinal [scale] [seed]
//! ```

use govdns::core::analysis::longitudinal::Longitudinal;
use govdns::core::analysis::providers::ProviderAnalysis;
use govdns::core::analysis::replication::{PrivateShare, SingleNsChurn, YearlyTotals};
use govdns::core::seed::select_seeds;
use govdns::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2011);

    eprintln!("generating world (scale {scale})...");
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    // The longitudinal analyses need only the PDNS side of the pipeline:
    // seed selection plus the historical index — no active probing.
    eprintln!("selecting seeds and indexing a decade of passive DNS...");
    let seeds = select_seeds(&campaign);
    let lon = Longitudinal::build(&campaign, &seeds);

    let yearly = YearlyTotals::compute(&lon);
    println!("== Fig 2/3: PDNS growth ==");
    println!("{}", yearly.table().to_text());
    let growth = yearly.domains(2020) as f64 / yearly.domains(2011).max(1) as f64;
    println!(
        "growth 2011→2020: {:.2}x (paper: 1.70x), with the 2019→2020 consolidation dip: {}",
        growth,
        if yearly.domains(2019) > yearly.domains(2020) { "present" } else { "absent" }
    );

    println!("\n== Fig 6: the single-NS cohort never stands still ==");
    let churn = SingleNsChurn::compute(&lon);
    println!("{}", churn.table().to_text());

    println!("== Fig 7: who runs their own nameservers ==");
    println!("{}", PrivateShare::compute(&lon).table().to_text());

    println!("== Tables II-III: the provider market, 2011 vs 2020 ==");
    let providers = ProviderAnalysis::compute(&lon, &campaign);
    println!("{}", providers.table2().to_text());
    println!("top providers by country coverage, 2011:");
    println!("{}", providers.table3(2011).to_text());
    println!("top providers by country coverage, 2020:");
    println!("{}", providers.table3(2020).to_text());
    println!(
        "countries on the single most widespread provider: {} (2011) → {} (2020), {:+.0}%",
        providers.top_provider_countries(2011),
        providers.top_provider_countries(2020),
        100.0
            * (providers.top_provider_countries(2020) as f64
                / providers.top_provider_countries(2011).max(1) as f64
                - 1.0)
    );
}
