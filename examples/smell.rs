//! Operational-smell CLI: detect, filter, and explain delegation smells
//! with trace-cited evidence.
//!
//! **Run mode**: run a replay-safe traced chaos campaign, pass the
//! measured delegation graph through the smell detectors, and print the
//! verdicts:
//!
//! ```sh
//! cargo run --release --example smell -- run --seed 7 [--workers 8] [--scale 0.02] \
//!     [--smell KIND] [--explain DOMAIN] [--json] [--out smells.json] [--csv smells.csv]
//! ```
//!
//! The campaign uses the worker-count-invariant configuration (flaky
//! chaos, no breakers, unlimited retry budget), and the stdout never
//! mentions worker counts or file paths: identically seeded runs print
//! byte-identical output — and `--out` writes byte-identical canonical
//! JSON — at any worker count. CI runs this twice (1 worker, then 8)
//! and byte-compares both.
//!
//! **Inspect mode**: reread an archived `smells.json` without re-running
//! the campaign, with the same filters:
//!
//! ```sh
//! cargo run --release --example smell -- inspect smells.json \
//!     [--smell KIND] [--explain DOMAIN] [--json]
//! ```
//!
//! `--smell KIND` keeps one smell kind (`cyclic_dependency`,
//! `single_homed_glue`, `stale_parent_ns`, `provider_monoculture`,
//! `lame_delegation`); `--explain DOMAIN` prints the domain's verdicts
//! with their full evidence chains and exits nonzero when the domain has
//! none — a typo never looks like a clean bill of health.

use std::path::PathBuf;
use std::process::ExitCode;

use govdns::core::BreakerPolicy;
use govdns::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_mode(&args[1..]),
        Some("inspect") => inspect_mode(&args[1..]),
        _ => {
            eprintln!("usage: smell <run|inspect> [options]  (see the module docs)");
            ExitCode::from(2)
        }
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).unwrap_or_else(|| panic!("{flag} needs a value")).clone()
}

/// Flags shared by both modes: filtering and output shape.
#[derive(Default)]
struct ViewArgs {
    smell: Option<SmellKind>,
    explain: Option<String>,
    json: bool,
}

impl ViewArgs {
    /// Handles a shared flag; `true` when consumed.
    fn take(&mut self, args: &[String], i: &mut usize) -> bool {
        match args[*i].as_str() {
            "--smell" => {
                let label = take_value(args, i, "--smell");
                self.smell = Some(SmellKind::parse(&label).unwrap_or_else(|| {
                    panic!("--smell {label:?}: unknown kind (see the module docs)")
                }));
            }
            "--explain" => self.explain = Some(take_value(args, i, "--explain")),
            "--json" => self.json = true,
            _ => return false,
        }
        true
    }

    /// Applies the kind filter and prints the report (text or JSON),
    /// then the optional drill-down. Exits nonzero when `--explain`
    /// names a domain with no verdicts.
    fn present(&self, report: &SmellReport) -> ExitCode {
        let report = match self.smell {
            Some(kind) => report.filtered(kind),
            None => report.clone(),
        };
        if self.json {
            println!("{}", report.canonical_json());
        } else {
            print!("{}", report.render_text());
        }
        if let Some(domain) = &self.explain {
            match report.explain(domain) {
                Some(text) => {
                    println!();
                    print!("{text}");
                }
                None => {
                    eprintln!("error: --explain {domain}: no verdicts for this domain");
                    return ExitCode::FAILURE;
                }
            }
        }
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------- run

struct RunArgs {
    seed: u64,
    workers: usize,
    scale_ppm: u64,
    out: Option<PathBuf>,
    csv: Option<PathBuf>,
    view: ViewArgs,
}

fn run_mode(args: &[String]) -> ExitCode {
    let mut parsed = RunArgs {
        seed: 7,
        workers: 1,
        scale_ppm: 20_000,
        out: None,
        csv: None,
        view: ViewArgs::default(),
    };
    let mut i = 0;
    while i < args.len() {
        if parsed.view.take(args, &mut i) {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--seed" => parsed.seed = take_value(args, &mut i, "--seed").parse().expect("--seed N"),
            "--workers" => {
                parsed.workers =
                    take_value(args, &mut i, "--workers").parse().expect("--workers N");
            }
            "--scale" => {
                let scale: f64 = take_value(args, &mut i, "--scale").parse().expect("--scale F");
                parsed.scale_ppm = (scale * 1_000_000.0).round() as u64;
            }
            "--out" => parsed.out = Some(PathBuf::from(take_value(args, &mut i, "--out"))),
            "--csv" => parsed.csv = Some(PathBuf::from(take_value(args, &mut i, "--csv"))),
            other => panic!("unknown run argument {other:?}"),
        }
        i += 1;
    }

    let scale = parsed.scale_ppm as f64 / 1_000_000.0;
    let world = WorldGenerator::new(WorldConfig::small(parsed.seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    // The worker-count-invariant configuration (see examples/trace.rs):
    // flaky chaos, no breakers, unlimited retry budget. The trace file
    // is what the evidence chains cite; a temp path keeps the stdout
    // path-free and therefore diffable across runs.
    let trace_path =
        std::env::temp_dir().join(format!("govdns-smell-example-{}.trace", std::process::id()));
    let config = RunnerConfig {
        workers: parsed.workers,
        retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
        chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: parsed.seed }),
        breaker: BreakerPolicy::none(),
        trace: Some(TraceSpec::new(&trace_path).with_seed(parsed.seed)),
        ..RunnerConfig::default()
    };
    let ctl = CampaignTelemetry::new();
    let report = Report::generate_with(&campaign, config, &ctl);
    let _ = std::fs::remove_file(&trace_path);

    // An empty unfiltered verdict set on a chaos campaign means the
    // detectors never saw the graph (analysis panic, empty world) — fail
    // loudly rather than archive a hollow report.
    if report.smells.verdicts.is_empty() {
        eprintln!(
            "error: smell pass produced no verdicts (analysis failures: {})",
            report.analysis_failures.len()
        );
        return ExitCode::FAILURE;
    }

    let smells = SmellReport::from_analysis(&report.smells, parsed.seed, parsed.scale_ppm);
    if let Some(path) = &parsed.out {
        std::fs::write(path, smells.canonical_json()).expect("write smell report");
    }
    if let Some(path) = &parsed.csv {
        std::fs::write(path, smells.to_csv()).expect("write smell CSV");
    }
    parsed.view.present(&smells)
}

// ------------------------------------------------------------ inspect

fn inspect_mode(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut view = ViewArgs::default();
    let mut i = 0;
    while i < args.len() {
        if view.take(args, &mut i) {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            arg if !arg.starts_with("--") => path = Some(PathBuf::from(arg)),
            other => panic!("unknown inspect argument {other:?}"),
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: smell inspect SMELLS.json [--smell KIND] [--explain DOMAIN] [--json]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match SmellReport::from_canonical_json(&text) {
        Ok(report) => view.present(&report),
        Err(message) => {
            eprintln!("error: {}: {message}", path.display());
            ExitCode::from(2)
        }
    }
}
