//! What-if analysis CLI: sweep counterfactual outage scenarios over a
//! measured baseline and rank the single points of failure.
//!
//! **Rank mode**: run the full sweep and print the ranked SPOF table:
//!
//! ```sh
//! cargo run --release --example counterfactual -- rank --seed 7 \
//!     [--scale 0.01] [--workers 8] [--country CC] [--json] [--out spof.json] [--csv FILE] \
//!     [--combo] [--partial K/N] [--degrade PPM] [--recovery-window SECONDS] [--recovery-step S]
//! ```
//!
//! Degraded modes: `--combo` adds compound (two-at-once) scenarios to
//! the enumeration; `--partial K/N` fails only `K` of every `N`
//! anycast sites per scenario; `--degrade PPM` swaps the hard
//! blackhole for a probabilistic drop at PPM parts per million;
//! `--recovery-window` models each outage through a TTL-honoring
//! resolver cache and appends per-domain time-to-dark/time-to-recover
//! timelines to every rendering.
//!
//! Rank mode exits nonzero when the sweep enumerates no scenarios —
//! an empty ranked report upstream of a CI gate is a configuration
//! error, not a clean pass.
//!
//! Stdout carries the ranked table (or, with `--json`, the canonical
//! JSON); `--out` additionally writes the canonical JSON to a file and
//! `--csv` the CSV bundle. The JSON is byte-identical across
//! identically-seeded runs at any `--workers` value — the CI
//! determinism gate `cmp`s exactly this.
//!
//! **Run mode**: sweep only matching scenarios and show, per scenario,
//! every domain that went dark:
//!
//! ```sh
//! cargo run --release --example counterfactual -- run --seed 7 \
//!     --scenario provider [--country CC] [--journal-dir DIR] [--json]
//! ```
//!
//! `--scenario` substring-matches scenario ids (`provider:`,
//! `asn:AS64500`, `cctld:zz`, ...); `--journal-dir` write-ahead-journals
//! each scenario campaign and resumes from existing journals.

use std::path::PathBuf;
use std::process::ExitCode;

use govdns::counterfactual::{run_sweep, PartialDial, RecoveryConfig, SweepConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rank") => sweep_mode(&args[1..], false),
        Some("run") => sweep_mode(&args[1..], true),
        _ => {
            eprintln!("usage: counterfactual <rank|run> [options]  (see the module docs)");
            ExitCode::from(2)
        }
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).unwrap_or_else(|| panic!("{flag} needs a value")).clone()
}

fn sweep_mode(args: &[String], detail: bool) -> ExitCode {
    let mut config = SweepConfig::default();
    let mut country: Option<String> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => config.seed = take_value(args, &mut i, "--seed").parse().expect("--seed N"),
            "--scale" => {
                let scale: f64 = take_value(args, &mut i, "--scale").parse().expect("--scale F");
                config.scale_ppm = (scale * 1_000_000.0).round() as u64;
            }
            "--workers" => {
                config.workers =
                    take_value(args, &mut i, "--workers").parse().expect("--workers N");
            }
            "--max-per-kind" => {
                config.enumeration.max_per_kind =
                    take_value(args, &mut i, "--max-per-kind").parse().expect("--max-per-kind N");
            }
            "--combo" => config.enumeration.compound = true,
            "--partial" => {
                let dial = take_value(args, &mut i, "--partial");
                config.partial =
                    Some(PartialDial::parse(&dial).unwrap_or_else(|| {
                        panic!("--partial wants K/N with K <= N, got {dial:?}")
                    }));
            }
            "--degrade" => {
                config.degrade_ppm =
                    Some(take_value(args, &mut i, "--degrade").parse().expect("--degrade PPM"));
            }
            "--recovery-window" => {
                let window_s = take_value(args, &mut i, "--recovery-window")
                    .parse()
                    .expect("--recovery-window SECONDS");
                config.recovery =
                    Some(RecoveryConfig { window_s, ..config.recovery.unwrap_or_default() });
            }
            "--recovery-step" => {
                let step_s = take_value(args, &mut i, "--recovery-step")
                    .parse()
                    .expect("--recovery-step SECONDS");
                config.recovery =
                    Some(RecoveryConfig { step_s, ..config.recovery.unwrap_or_default() });
            }
            "--scenario" => config.scenario_filter = Some(take_value(args, &mut i, "--scenario")),
            "--journal-dir" => {
                config.journal_dir = Some(PathBuf::from(take_value(args, &mut i, "--journal-dir")));
            }
            "--country" => country = Some(take_value(args, &mut i, "--country")),
            "--json" => json = true,
            "--out" => out = Some(PathBuf::from(take_value(args, &mut i, "--out"))),
            "--csv" => csv = Some(PathBuf::from(take_value(args, &mut i, "--csv"))),
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }

    let mut report = run_sweep(&config);
    if report.entries.is_empty() {
        // Mirrors the corpus empty-glob check: a sweep that enumerated
        // nothing produces a vacuously-stable report, and a CI gate
        // comparing it would "pass" without testing anything.
        eprintln!(
            "counterfactual: no scenarios enumerated (seed {}, scale_ppm {}, filter {:?}) — \
             an empty report would make every downstream byte-comparison vacuous",
            config.seed, config.scale_ppm, config.scenario_filter
        );
        return ExitCode::FAILURE;
    }
    if let Some(cc) = &country {
        report = report.filtered_by_country(cc);
    }

    if json {
        println!("{}", report.canonical_json());
    } else {
        print!("{}", report.render_text());
        if detail {
            for entry in &report.entries {
                if entry.darkened.is_empty() {
                    continue;
                }
                println!("\n{} darkens {} domains:", entry.id, entry.domains_darkened);
                for d in &entry.darkened {
                    println!("  {} ({}) {} -> {}", d.domain, d.country, d.from, d.to);
                }
            }
        }
    }
    if let Some(path) = out {
        std::fs::write(&path, report.canonical_json()).expect("write --out file");
    }
    if let Some(path) = csv {
        std::fs::write(&path, report.to_csv()).expect("write --csv file");
    }
    ExitCode::SUCCESS
}
