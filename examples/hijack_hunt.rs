//! Hijack hunt: the security story of §IV-C/D. Finds defective
//! delegations whose nameserver domains are registrable, prices the
//! attack at the registrar, and lists the exposed government domains —
//! including the subtler inconsistency-only (parked) surface.
//!
//! ```sh
//! cargo run --release --example hijack_hunt [scale] [seed]
//! ```

use govdns::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1337);

    eprintln!("generating world (scale {scale})...");
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    eprintln!("probing and analyzing...");
    let report = Report::generate(&campaign, RunnerConfig::default());
    let d = &report.delegation;

    println!("== dangling NS domains registrable right now ==");
    let mut ranked: Vec<_> = d.available.iter().collect();
    ranked.sort_by(|a, b| {
        b.affected
            .len()
            .cmp(&a.affected.len())
            .then(a.price_usd.partial_cmp(&b.price_usd).expect("prices are finite"))
    });
    for a in &ranked {
        println!(
            "{:<28} {:>10.2} USD  exposes {} domain(s) in {} country(ies)",
            a.name.to_string(),
            a.price_usd,
            a.affected.len(),
            a.countries.len()
        );
        for victim in a.affected.iter().take(4) {
            println!("    -> {victim}");
        }
        if a.affected.len() > 4 {
            println!("    -> ... and {} more", a.affected.len() - 4);
        }
    }
    println!();
    println!(
        "total: {} registrable d_ns, {} exposed domains, {} countries; {} of the exposed domains are already fully dark",
        d.available.len(),
        d.affected_domains,
        d.affected_countries,
        d.affected_fully_stale
    );
    if !d.cost_cdf.is_empty() {
        println!(
            "attack budget: min {:.2} USD, median {:.2} USD, max {:.2} USD",
            d.cost_cdf.min().expect("non-empty"),
            d.cost_cdf.quantile(0.5),
            d.cost_cdf.max().expect("non-empty"),
        );
    }

    println!();
    println!("== parked/inconsistency-only surface (no defective delegation) ==");
    let c = &report.consistency;
    for p in &c.parked {
        println!(
            "{:<28} {:>10.2} USD  referenced (parent-side only) by {} domain(s)",
            p.name.to_string(),
            p.price_usd,
            p.affected.len()
        );
        for victim in &p.affected {
            println!("    -> {victim}");
        }
    }
    println!(
        "total: {} registrable d_ns over {} domains in {} countries (cheapest: {})",
        c.parked.len(),
        c.parked_affected_domains,
        c.parked_affected_countries,
        c.parked_min_price.map_or("-".to_owned(), |p| format!("{p:.2} USD")),
    );
}
