//! Global audit: regenerate every table and figure of the paper at a
//! configurable scale, printing the full report and (optionally) writing
//! each table as CSV into a report directory.
//!
//! This is the binary behind EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release --example global_audit [scale] [seed] [outdir]
//! ```

use std::path::Path;

use govdns::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20220627);
    let outdir = args.next();

    eprintln!("generating world at {:.0}% of paper scale (seed {seed})...", scale * 100.0);
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    eprintln!("world: {} servers, {} PDNS entries", world.network.server_count(), world.pdns.len());

    eprintln!("running campaign and analyses...");
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());

    println!("{}", report.render());

    if let Some(dir) = outdir {
        let dir = Path::new(&dir);
        report.write_csv_bundle(dir).expect("write CSV bundle");
        eprintln!("CSV tables written to {}", dir.display());
    }
}
