//! Flight-recorder demo and trace inspection CLI.
//!
//! **Run mode** (default): run a chaos campaign with the flight
//! recorder on, then summarize the trace — per-domain causal timelines,
//! flight dumps, and a fingerprint of the trace file itself:
//!
//! ```sh
//! cargo run --release --example trace -- --seed 7 [--workers 8] [--scale 0.02] \
//!     [--sample-ppm 1000000] [--out run.trace] [--explain DOMAIN] [--prom metrics.prom]
//! ```
//!
//! The stdout of run mode never mentions the worker count or any file
//! path: identically seeded runs print byte-identical output at any
//! worker count, and the trace files they write are byte-identical too.
//! CI runs this twice (1 worker, then 8) and diffs both.
//!
//! **Inspect mode**: reconstruct timelines from an existing trace file,
//! with optional filters:
//!
//! ```sh
//! cargo run --release --example trace -- --inspect run.trace \
//!     [--domain NAME] [--dst ADDR] [--class CLASS]
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::process::ExitCode;

use govdns::core::analysis::remedies::{plan_for, Remedy};
use govdns::core::{BreakerPolicy, DomainProbe};
use govdns::prelude::*;
use govdns::trace::{DomainBlock, TraceData, TraceEvent};

/// FNV-1a, for compact run fingerprints.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Args {
    seed: u64,
    workers: usize,
    scale: f64,
    sample_ppm: u32,
    out: Option<PathBuf>,
    explain: Option<String>,
    prom: Option<PathBuf>,
    inspect: Option<PathBuf>,
    domain: Option<String>,
    dst: Option<Ipv4Addr>,
    class: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        seed: 7,
        workers: 1,
        scale: 0.02,
        sample_ppm: 1_000_000,
        out: None,
        explain: None,
        prom: None,
        inspect: None,
        domain: None,
        dst: None,
        class: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => parsed.seed = next("--seed").parse().expect("--seed N"),
            "--workers" => parsed.workers = next("--workers").parse().expect("--workers N"),
            "--scale" => parsed.scale = next("--scale").parse().expect("--scale F"),
            "--sample-ppm" => {
                parsed.sample_ppm = next("--sample-ppm").parse().expect("--sample-ppm N");
            }
            "--out" => parsed.out = Some(PathBuf::from(next("--out"))),
            "--explain" => parsed.explain = Some(next("--explain")),
            "--prom" => parsed.prom = Some(PathBuf::from(next("--prom"))),
            "--inspect" => parsed.inspect = Some(PathBuf::from(next("--inspect"))),
            "--domain" => parsed.domain = Some(next("--domain")),
            "--dst" => parsed.dst = Some(next("--dst").parse().expect("--dst IPv4")),
            "--class" => parsed.class = Some(next("--class")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.inspect {
        inspect(path, &args);
        return ExitCode::SUCCESS;
    }
    run(&args)
}

/// Inspect mode: print timelines from an existing trace file.
fn inspect(path: &std::path::Path, args: &Args) {
    let log = read_trace(path).expect("readable trace file");
    if let Some(h) = &log.header {
        println!(
            "trace: {} of {} domains sampled (sample {} ppm, flight capacity {}), complete: {}",
            log.domains.len(),
            h.domains,
            h.sample_ppm,
            h.flight_capacity,
            log.completed,
        );
    }
    if log.dropped_bytes > 0 {
        println!("torn tail: {} bytes dropped", log.dropped_bytes);
    }
    let class_matches = |e: &TraceEvent| match &args.class {
        None => true,
        Some(want) => e.class() == Some(want.as_str()),
    };
    let dst_matches = |e: &TraceEvent| match args.dst {
        None => true,
        Some(want) => e.dst() == Some(want),
    };
    for block in &log.domains {
        if let Some(want) = &args.domain {
            if &block.domain != want {
                continue;
            }
        }
        let events: Vec<&TraceEvent> =
            block.events.iter().filter(|e| class_matches(e) && dst_matches(e)).collect();
        if events.is_empty() {
            continue;
        }
        println!("\n{} (index {}, {} events):", block.domain, block.index, block.events.len());
        for e in events {
            println!("  {}", e.render());
        }
    }
    if !log.dumps.is_empty() {
        println!("\nflight dumps:");
        for d in &log.dumps {
            let domain = d.domain.as_deref().unwrap_or("-");
            println!("  {} domain={} events={}", d.trigger, domain, d.events.len());
        }
    }
}

/// Run mode: a traced chaos campaign plus a deterministic summary.
/// Exits nonzero when `--explain` names a domain the trace never
/// sampled, so scripts can't mistake a typo for a clean explanation.
fn run(args: &Args) -> ExitCode {
    let world =
        WorldGenerator::new(WorldConfig::small(args.seed).with_scale(args.scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    // Flaky profile, no breakers, and an *unlimited* retry budget: the
    // only worker-count-sensitive signals (shared retry budget, REFUSED
    // burst ordinals, breaker races) are off, so the trace file and this
    // output are byte-identical at any worker count.
    let out = args.out.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("govdns-trace-example-{}.trace", std::process::id()))
    });
    let config = RunnerConfig {
        workers: args.workers,
        retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
        chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: args.seed }),
        breaker: BreakerPolicy::none(),
        trace: Some(TraceSpec::new(&out).with_seed(args.seed).with_sample_ppm(args.sample_ppm)),
        ..RunnerConfig::default()
    };
    let ctl = CampaignTelemetry::new();
    let report = Report::generate_with(&campaign, config, &ctl);

    println!("traced chaos campaign: profile flaky, seed {}, scale {}", args.seed, args.scale);
    println!();
    println!("== campaign ==");
    println!("queried:             {}", report.funnel.queried);
    println!("parent-responsive:   {}", report.funnel.parent_responsive);
    println!("second-round probes: {}", report.dataset.retried);
    println!("degraded domains:    {}", report.health.degraded_domains);
    // NOT printed: traffic/fault totals and the dataset fingerprint.
    // Those count the resolver's internal queries too, whose number
    // depends on per-worker cache warmth — they vary with the worker
    // count even though every probe outcome (and the trace) does not.

    let log = read_trace(&out).expect("trace file written by the campaign");
    println!();
    println!("== trace ==");
    let header = log.header.as_ref().expect("trace header");
    println!("domains sampled:     {} of {}", log.domains.len(), header.domains);
    println!("events recorded:     {}", log.events_total());
    println!("complete:            {}", log.completed);
    let mut by_trigger: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &log.dumps {
        *by_trigger.entry(d.trigger.as_str()).or_insert(0) += 1;
    }
    for (trigger, n) in &by_trigger {
        println!("dumps[{trigger}]: {n}");
    }

    // One exemplar causal timeline, reconstructed from the trace file —
    // the first degraded domain that was sampled.
    let degraded = first_degraded(&report.dataset, &log);
    if let Some((block, _)) = &degraded {
        println!();
        println!("== exemplar degraded-domain timeline ==");
        println!("{} ({} events):", block.domain, block.events.len());
        for line in block.timeline() {
            println!("  {line}");
        }
    }

    let mut exit = ExitCode::SUCCESS;
    if let Some(name) = &args.explain {
        let block = log.domain(name);
        let probe = report
            .dataset
            .discovered
            .iter()
            .position(|d| d.name.to_string() == *name)
            .and_then(|i| report.dataset.probes.get(i));
        match (block, probe) {
            (Some(block), Some(probe)) => explain(block, probe, &campaign),
            _ => {
                eprintln!("error: --explain {name}: domain not found in the sampled trace");
                exit = ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.prom {
        std::fs::write(path, report.dataset.telemetry.render_prometheus())
            .expect("write prometheus exposition");
    }

    println!();
    let bytes = std::fs::read(&out).expect("trace file bytes");
    println!("trace fingerprint: {:016x} ({} bytes)", fnv64(&bytes), bytes.len());
    exit
}

/// The first degraded domain (campaign order) that has a trace block.
fn first_degraded<'l>(
    dataset: &MeasurementDataset,
    log: &'l TraceLog,
) -> Option<(&'l DomainBlock, usize)> {
    dataset.probes.iter().enumerate().find_map(|(i, probe)| {
        if !probe.degraded() {
            return None;
        }
        let name = dataset.discovered[i].name.to_string();
        log.domain(&name).map(|block| (block, i))
    })
}

/// Explain a domain's remediation verdict by replaying the trace events
/// that support each remedy.
fn explain(block: &DomainBlock, probe: &DomainProbe, campaign: &Campaign<'_>) {
    println!();
    println!("== explain {} ==", block.domain);
    let plan = plan_for(probe, campaign);
    if plan.is_empty() {
        println!("no remediation needed; full timeline:");
        for line in block.timeline() {
            println!("  {line}");
        }
        return;
    }
    for remedy in &plan.remedies {
        println!("remedy: {remedy:?}");
        let support = supporting(remedy, block);
        if support.is_empty() {
            println!("  (no per-query trace events bear on this remedy)");
        }
        for e in support {
            println!("  {}", e.render());
        }
    }
}

/// The trace events that bear on a remedy: the replayed evidence an
/// operator would check before acting on the verdict.
fn supporting<'b>(remedy: &Remedy, block: &'b DomainBlock) -> Vec<&'b TraceEvent> {
    let pick = |f: &dyn Fn(&TraceEvent) -> bool| -> Vec<&'b TraceEvent> {
        block.events.iter().filter(|e| f(e)).collect()
    };
    match remedy {
        // Flakiness: the faults, backoffs, and denied retries that made
        // the domain answer only degraded.
        Remedy::MonitorFlakiness => pick(&|e| {
            matches!(
                e.data,
                TraceData::Fault { .. } | TraceData::Backoff { .. } | TraceData::RetryDenied { .. }
            )
        }),
        // A dead zone: every exchange that went unanswered.
        Remedy::RemoveDelegation => {
            pick(&|e| matches!(e.class(), Some("timeout" | "rejected" | "skipped")))
        }
        // Quarantine findings: the breaker decisions themselves.
        Remedy::Quarantined(_) => pick(&|e| {
            matches!(
                e.data,
                TraceData::BreakerDenied { .. }
                    | TraceData::BreakerTrial { .. }
                    | TraceData::Breaker { .. }
            )
        }),
        // Per-nameserver fixes: the resolution attempts and failed
        // exchanges involving that host's addresses.
        Remedy::DropNameserver(host) | Remedy::FixNameserverName(host) => {
            let host = host.to_string();
            pick(&|e| match &e.data {
                TraceData::Resolve { host: h, .. } => *h == host,
                _ => e.class().is_some_and(|c| c != "authoritative"),
            })
        }
        // Structural remedies (parent sync, replicas, placement,
        // registry locks, hijack reclaims) come from the probe's final
        // NS sets, not from individual query events.
        _ => Vec::new(),
    }
}
