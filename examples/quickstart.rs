//! Quickstart: generate a small synthetic e-government world, run the
//! full measurement pipeline, and print a one-page health summary.
//!
//! ```sh
//! cargo run --release --example quickstart [scale] [seed]
//! ```

use govdns::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.03);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    eprintln!("generating world (scale {scale}, seed {seed})...");
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    eprintln!(
        "world ready: {} servers, {} PDNS entries, {} countries",
        world.network.server_count(),
        world.pdns.len(),
        world.countries.len()
    );

    eprintln!("running measurement campaign...");
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let ctl = CampaignTelemetry::new().with_progress(250, |e: ProgressEvent| {
        eprintln!(
            "  probed {}/{} domains ({:.0}%), {} queries issued",
            e.done,
            e.total,
            100.0 * e.fraction(),
            e.queries_issued
        );
    });
    let report = Report::generate_with(&campaign, RunnerConfig::default(), &ctl);

    let f = report.funnel;
    println!("government DNS health summary");
    println!("=============================");
    println!("domains queried:            {}", f.queried);
    println!("  parent zone responded:    {}", f.parent_responsive);
    println!("  delegation still present: {}", f.parent_nonempty);
    println!("  zone answered:            {}", f.child_responsive);
    println!();
    println!(
        "replication:   {:.1}% of domains run ≥2 nameservers; {} run exactly one",
        report.active_replication.multi_ns_share, report.active_replication.d1ns_total
    );
    println!(
        "staleness:     {:.1}% of single-NS domains no longer answer at all",
        report.active_replication.d1ns_stale_share
    );
    let t = report.diversity.total();
    println!(
        "diversity:     of {} replicated domains, {:.1}% span >1 address, {:.1}% >1 /24, {:.1}% >1 AS",
        t.domains, t.multi_ip_pct, t.multi_24_pct, t.multi_asn_pct
    );
    println!(
        "delegations:   {:.1}% have a defective (lame) delegation; {} fully dead",
        report.delegation.any_defective_pct(),
        report.delegation.fully_defective
    );
    println!(
        "hijack risk:   {} registrable nameserver domains expose {} government domains in {} countries",
        report.delegation.available.len(),
        report.delegation.affected_domains,
        report.delegation.affected_countries
    );
    println!(
        "consistency:   {:.1}% of zones agree with their parent (P = C)",
        report.consistency.equal_pct
    );
    println!(
        "centralization: top provider served {} countries in 2011, {} in 2020",
        report.providers.top_provider_countries(2011),
        report.providers.top_provider_countries(2020)
    );
    println!(
        "campaign cost:  {} queries, {} KiB sent, {} KiB received",
        report.dataset.traffic.queries_sent,
        report.dataset.traffic.bytes_sent / 1024,
        report.dataset.traffic.bytes_received / 1024
    );
    println!();
    println!("pipeline telemetry");
    println!("==================");
    print!("{}", report.dataset.telemetry.render_text());
}
