//! Crash-safe campaigns: journal every completed probe to a write-ahead
//! log, kill the process mid-campaign, then resume from the journal and
//! finish with a dataset byte-identical to an uninterrupted run.
//!
//! ```sh
//! # Run half the campaign, then die hard (exit 9, no cleanup):
//! cargo run --release --example resume -- --seed 7 --crash-after 200
//!
//! # Resume from the journal and finish:
//! cargo run --release --example resume -- --seed 7 --resume
//!
//! # The printed dataset fingerprint matches a run that never crashed:
//! cargo run --release --example resume -- --seed 7
//! ```
//!
//! Add `--profile hostile --breaker` to do the same through injected
//! faults with destination circuit breakers quarantining dead servers.

use govdns::prelude::*;

/// FNV-1a over the canonical dataset encoding: a compact fingerprint
/// two runs can be compared by.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let mut seed = 7u64;
    let mut scale = 0.02f64;
    let mut profile: Option<ChaosProfile> = None;
    let mut breaker = false;
    let mut journal_path = std::path::PathBuf::from("campaign.journal");
    let mut crash_after: Option<usize> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--scale" => scale = args.next().and_then(|s| s.parse().ok()).expect("--scale F"),
            "--profile" => {
                let name = args.next().expect("--profile NAME");
                profile = Some(
                    ChaosProfile::parse(&name)
                        .unwrap_or_else(|| panic!("unknown profile {name:?}")),
                );
            }
            "--breaker" => breaker = true,
            "--journal" => {
                journal_path = args.next().expect("--journal PATH").into();
            }
            "--crash-after" => {
                crash_after =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--crash-after N"));
            }
            "--resume" => resume = true,
            other => panic!("unknown argument {other:?}"),
        }
    }

    if resume {
        let replay = JournalReplay::load(&journal_path);
        println!("== journal replay ==");
        println!("records:        {}", replay.records);
        println!("probes replayed: {}", replay.probes.len());
        println!(
            "checkpoint:     {}",
            replay
                .checkpoint
                .as_ref()
                .map_or("none".to_owned(), |c| format!("at probe {}", c.probes_done)),
        );
        println!("dropped bytes:  {} (torn/corrupt tail)", replay.dropped_bytes);
        println!("prior resumes:  {}", replay.resumes);
        println!("completed:      {}", replay.completed);
        println!();
    }

    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);

    // One worker keeps the query interleaving deterministic, which is
    // what makes the resumed dataset *byte-identical* to an
    // uninterrupted one.
    let config = RunnerConfig {
        workers: 1,
        retry: if profile.is_some() { RetryPolicy::adaptive() } else { RetryPolicy::default() },
        chaos: profile.map(|p| ChaosSpec { profile: p, seed }),
        breaker: if breaker { BreakerPolicy::guarded() } else { BreakerPolicy::none() },
        journal: Some(JournalSpec {
            checkpoint_every: 16,
            ..JournalSpec::new(journal_path.clone())
        }),
        resume_from: resume.then(|| journal_path.clone()),
        ..RunnerConfig::default()
    };

    // The simulated crash: a hard exit from the progress callback — no
    // unwinding, no flushing beyond what the journal already forced.
    let ctl = match crash_after {
        Some(limit) => CampaignTelemetry::new().with_progress(1, move |e: ProgressEvent| {
            if e.done >= limit {
                eprintln!("crash-after: killing the process at probe {} of {}", e.done, e.total);
                std::process::exit(9);
            }
        }),
        None => CampaignTelemetry::new(),
    };

    let dataset = govdns::core::run_campaign_with(&campaign, config, &ctl);

    println!("== campaign ==");
    println!("probes:          {}", dataset.probes.len());
    println!("queries sent:    {}", dataset.traffic.queries_sent);
    println!("second-round probes: {}", dataset.retried);
    if dataset.faults.injected() > 0 {
        println!("injected faults: {}", dataset.faults.injected());
    }
    let counters = &dataset.telemetry.counters;
    for key in ["journal.replayed_probes", "journal.records_appended", "probe.breaker.tripped"] {
        if let Some(v) = counters.get(key) {
            println!("{key}: {v}");
        }
    }
    println!();
    let json = dataset.canonical_json();
    println!(
        "dataset fingerprint: {:016x} ({} bytes canonical)",
        fnv64(json.as_bytes()),
        json.len()
    );
}
