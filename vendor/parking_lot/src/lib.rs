//! Stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape this workspace uses: `lock()`,
//! `read()`, and `write()` return guards directly (no `Result`), and a
//! poisoned std lock is transparently recovered — parking_lot has no
//! poisoning, so neither does this stub.

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
