//! Stand-in for the slice of the `bytes` crate this workspace uses:
//! `BytesMut` as a growable buffer with big-endian put methods, frozen
//! into an immutable `Bytes` that derefs to `[u8]`.

use std::ops::Deref;

/// An immutable byte buffer (here: a plain `Vec<u8>` wrapper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: data.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Big-endian append operations (the `bytes::BufMut` surface used here).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[0x08]);
        assert_eq!(b.len(), 8);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
