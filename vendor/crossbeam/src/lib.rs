//! Stand-in for the slice of `crossbeam` this workspace uses:
//! `crossbeam::scope`, implemented on top of `std::thread::scope`.
//!
//! Behavioral difference: if a spawned thread panics, std's scoped
//! threads re-raise the panic at the end of the scope instead of
//! returning `Err` — for callers that `.expect()` the result (as this
//! workspace does) the observable behavior is identical.

/// Scoped-thread support mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure; supports spawning.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle
        /// (crossbeam-style), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Result type of [`scope`]: crossbeam reports child panics as `Err`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }
}
