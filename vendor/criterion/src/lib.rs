//! Stand-in for the slice of `criterion` this workspace uses.
//!
//! Runs each bench closure a fixed number of iterations (the
//! configured sample size) after a short warmup and prints one
//! `ns/iter` line per bench. No statistical analysis, outlier
//! rejection, or HTML reports — enough to run `cargo bench` offline
//! and catch gross regressions.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per bench.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named bench.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: PhantomData }
    }
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput (recorded but unused here).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one bench within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to bench closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters.min(2) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part bench identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters: samples.max(1) as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
    println!("bench {id:<48} {per_iter:>14} ns/iter ({} iters)", bencher.iters);
}

/// Declares a bench group; both the `name =/config =/targets =` form and
/// the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_closure() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        // 2 warmup + 5 timed.
        assert_eq!(runs, 7);

        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("inner", 3), |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
