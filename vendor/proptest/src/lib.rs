//! Stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements random-input property testing without shrinking: each
//! `proptest!` test body runs `PROPTEST_CASES` times (default 32) with
//! inputs drawn from the given strategies, seeded deterministically
//! from the test name so failures are reproducible. Supported strategy
//! surface: regex-subset string literals, integer ranges, tuples,
//! `Just`, `prop_map`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::vec`, and `prop::sample::select`.

pub mod test_runner {
    //! Deterministic case-count and RNG plumbing.

    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Number of cases per property, `PROPTEST_CASES` env override.
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
    }

    /// A generator seeded from the test's name (FNV-1a), so every run
    /// of a given property sees the same input sequence.
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    //! The core [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `prop_oneof!` stores arms as
    /// `Box<dyn Strategy<Value = V>>`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Sized-only extension methods (kept separate so [`Strategy`]
    /// stays object-safe).
    pub trait StrategyExt: Strategy + Sized {
        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy> StrategyExt for S {}

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`StrategyExt::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over non-empty `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.arms[rng.gen_range(0..self.arms.len())].generate(rng)
        }
    }

    /// Type-erases a strategy so heterogeneous arms can share a `Vec`.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// A string literal is a regex-subset pattern generating matching
    /// strings (see [`crate::string`] for the supported syntax).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: rand::StandardSample> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (uniform over its domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::seq::SliceRandom;

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options.choose(rng).expect("select over empty options").clone()
        }
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies.
    //!
    //! Supported syntax: literal characters, `\n`/`\t`/`\\` escapes,
    //! character classes with ranges (`[a-z0-9-]`, trailing `-` is
    //! literal), `{n}` / `{n,m}` quantifiers, and top-level `|`
    //! alternation. No `*`, `+`, `?`, groups, or anchors.

    use crate::test_runner::TestRng;
    use rand::Rng;

    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let alternatives = split_alternatives(pattern);
        let alt = &alternatives[rng.gen_range(0..alternatives.len())];
        let mut out = String::new();
        for el in parse_sequence(alt) {
            let n = rng.gen_range(el.min..=el.max);
            for _ in 0..n {
                out.push(el.chars[rng.gen_range(0..el.chars.len())]);
            }
        }
        out
    }

    fn split_alternatives(pattern: &str) -> Vec<String> {
        let mut parts = vec![String::new()];
        let mut in_class = false;
        let mut escaped = false;
        for c in pattern.chars() {
            if escaped {
                parts.last_mut().unwrap().push(c);
                escaped = false;
                continue;
            }
            match c {
                '\\' => {
                    parts.last_mut().unwrap().push(c);
                    escaped = true;
                }
                '[' if !in_class => {
                    in_class = true;
                    parts.last_mut().unwrap().push(c);
                }
                ']' if in_class => {
                    in_class = false;
                    parts.last_mut().unwrap().push(c);
                }
                '|' if !in_class => parts.push(String::new()),
                _ => parts.last_mut().unwrap().push(c),
            }
        }
        parts
    }

    fn parse_sequence(s: &str) -> Vec<Element> {
        let chars: Vec<char> = s.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![unescape(chars[i - 1])]
                }
                c => {
                    assert!(!"(){}*+?^$.".contains(c), "unsupported regex syntax {c:?} in {s:?}");
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close =
                    chars[i..].iter().position(|&c| c == '}').expect("unclosed quantifier") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            out.push(Element { chars: set, min, max });
        }
        out
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while chars[i] != ']' {
            let lo = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            if chars[i] == '-' && chars[i + 1] != ']' {
                i += 1;
                let hi = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                i += 1;
                for code in (lo as u32)..=(hi as u32) {
                    set.push(char::from_u32(code).expect("valid char range"));
                }
            } else {
                set.push(lo);
            }
        }
        assert!(!set.is_empty(), "empty character class");
        (set, i + 1)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }
}

/// Namespace mirror so `prop::collection::vec` etc. resolve through the
/// prelude glob, as in the real crate.
pub mod prop {
    pub use crate::{collection, sample, strategy};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy, StrategyExt};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..$crate::test_runner::cases() {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }

        $crate::proptest! { $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::rng_for("regex");
        for _ in 0..200 {
            let s =
                crate::string::generate_matching("[a-z][a-z0-9-]{0,14}[a-z0-9]|[a-z]", &mut rng);
            assert!(!s.is_empty() && s.len() <= 16, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());

            let p = crate::string::generate_matching("[ -~\t\n]{0,30}", &mut rng);
            assert!(p.len() <= 30);
            assert!(p.chars().all(|c| (' '..='~').contains(&c) || c == '\t' || c == '\n'));
        }
    }

    proptest! {
        #[test]
        fn macro_drives_strategies(
            v in prop::collection::vec(any::<u8>(), 1..5),
            k in 0usize..6,
            pick in prop::sample::select(vec![10u32, 20, 30]),
            w in prop_oneof![Just(1u8), Just(2u8), 3u8..=9],
        ) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(k < 6);
            prop_assert!(pick % 10 == 0);
            prop_assert!((1..=9).contains(&w));
            prop_assert_ne!(w, 0);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
