//! No-op derive macros standing in for `serde_derive`.
//!
//! The sibling `serde` stub blanket-implements its marker traits for
//! every type, so these derives only need to exist (and accept the
//! `#[serde(...)]` helper attribute) — they expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
