//! Marker-trait stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` widely for API
//! hygiene but never performs actual serde serialization (report
//! rendering is hand-written text/CSV/JSON). The stub therefore
//! provides the trait names, blanket implementations, and re-exports
//! the no-op derives — enough for every `use serde::{...}` and
//! `#[derive(...)]` in the tree to compile unchanged.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for common imports.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for common imports.
pub mod ser {
    pub use crate::Serialize;
}
