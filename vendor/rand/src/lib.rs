//! Stand-in for the slice of `rand` 0.8 this workspace uses.
//!
//! Provides a deterministic xoshiro256** generator behind the
//! `SmallRng` name, the `Rng`/`RngCore`/`SeedableRng` traits with the
//! methods the codebase calls (`gen`, `gen_bool`, `gen_range`), and
//! `seq::SliceRandom` (`shuffle`, `choose`). The generated streams
//! differ from the real crate's, but every consumer in this workspace
//! only relies on determinism-per-seed and uniformity, both of which
//! hold.

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of the real crate).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types with a uniform sampler over a bounded interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128;
                let off = u128::from(rng.next_u64()) % width;
                (lo as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let off = u128::from(rng.next_u64()) % width;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts. A single blanket impl per
/// range shape (as in the real crate) keeps integer-literal inference
/// working.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// User-facing generator methods, blanket-implemented for any
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from OS entropy. The stub derives entropy
    /// from the system clock — adequate for its non-cryptographic uses.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.gen::<u64>();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle virtually never fixes every point");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
