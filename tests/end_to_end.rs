//! Workspace-level integration tests: the full stack exercised through
//! the facade crate, including failure injection and determinism.

use govdns::prelude::*;
use govdns::world::{SensorConfig, WorldGenerator as WG};

fn tiny(seed: u64) -> govdns::world::World {
    WG::new(WorldConfig::small(seed).with_scale(0.01)).generate()
}

#[test]
fn full_pipeline_through_the_facade() {
    let world = tiny(99);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());
    assert_eq!(report.dataset.seeds.len(), 193);
    assert!(report.funnel.queried > 400);
    assert!(report.funnel.child_responsive > 0);
    let text = report.render();
    assert!(text.contains("Table I"));
}

#[test]
fn pipeline_is_deterministic_without_loss() {
    let run = |seed: u64| {
        let world = tiny(seed);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let report = Report::generate(&campaign, RunnerConfig { workers: 4, ..Default::default() });
        (
            report.funnel,
            report.delegation.any_defective,
            report.consistency.comparable,
            report.active_replication.d1ns_total,
        )
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78), "different seeds should differ somewhere");
}

#[test]
fn packet_loss_triggers_second_round_retries() {
    let world = WG::new(WorldConfig::small(5).with_scale(0.01).with_loss_rate(0.25)).generate();
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());
    assert!(
        report.dataset.retried > 0,
        "25% loss should force second-round probes (got {})",
        report.dataset.retried
    );
    // Despite loss, the pipeline still finds plenty of healthy domains.
    assert!(report.funnel.child_responsive * 2 > report.funnel.parent_nonempty);
}

#[test]
fn imperfect_sensors_shrink_but_do_not_break_discovery() {
    let perfect = tiny(31);
    let lossy = WG::new(
        WorldConfig::small(31)
            .with_scale(0.01)
            .with_sensor(SensorConfig { coverage: 0.8, ..SensorConfig::realistic() }),
    )
    .generate();
    let count = |w: &govdns::world::World| {
        let matchers = w.catalog.matchers();
        let campaign = Campaign::new(w, &matchers);
        let seeds = govdns::core::seed::select_seeds(&campaign);
        govdns::core::discovery::discover(
            &campaign,
            &seeds,
            govdns::core::discovery::DiscoveryConfig::paper(w.collection_date),
        )
        .len()
    };
    let full = count(&perfect);
    let partial = count(&lossy);
    assert!(partial < full, "coverage 0.8 should lose domains: {partial} vs {full}");
    assert!(partial * 10 > full * 6, "but not most of them: {partial} vs {full}");
}

#[test]
fn traffic_accounting_is_plausible() {
    let world = tiny(12);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig { max_qps: 100, ..Default::default() });
    let t = report.dataset.traffic;
    assert!(t.queries_sent > 1_000);
    assert_eq!(t.responses_received + t.timeouts, t.queries_sent);
    // Responses are bigger than queries on average.
    assert!(t.bytes_received > t.bytes_sent);
    // Average response stays within typical UDP DNS sizes.
    let avg_resp = t.bytes_received / t.responses_received.max(1);
    assert!((20..512).contains(&avg_resp), "avg response {avg_resp} bytes");
}

#[test]
fn wire_format_roundtrips_through_the_facade() {
    use govdns::model::{wire, Message};
    let q = Message::query(7, "portal.gov.br".parse().unwrap(), RecordType::Ns);
    assert_eq!(wire::decode(&wire::encode(&q)).unwrap(), q);
}

#[test]
fn worker_count_does_not_change_results() {
    // Per-domain probes are independent; only scheduling differs.
    let outcome = |workers: usize| {
        let world = tiny(63);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let ds = govdns::core::run_campaign(
            &campaign,
            RunnerConfig { workers, ..RunnerConfig::default() },
        );
        let mut summary: Vec<(String, bool, usize)> = ds
            .probes
            .iter()
            .map(|p| (p.domain.to_string(), p.has_authoritative_answer(), p.ns_union().len()))
            .collect();
        summary.sort();
        summary
    };
    assert_eq!(outcome(1), outcome(8));
}

#[test]
fn runner_reports_lock_free_marker_and_worker_busy_spread() {
    let world = tiny(17);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let ds = govdns::core::run_campaign(
        &campaign,
        RunnerConfig { workers: 4, ..RunnerConfig::default() },
    );
    let gauges = &ds.telemetry.gauges;
    assert_eq!(gauges["runner.workers"], 4);
    assert_eq!(gauges["net.lock_free"], 1, "hot path advertises its lock-free accounting");

    // Every worker's busy time lands in the histogram and the spread
    // gauges: max >= min > 0, and the spread is max/min as a percentage
    // (so never below 100).
    let busy = &ds.telemetry.histograms["runner.worker_busy_ms"];
    assert_eq!(busy.count, 4, "one busy-time sample per worker");
    let max = gauges["runner.worker_busy_max_ms"];
    let min = gauges["runner.worker_busy_min_ms"];
    let spread = gauges["runner.worker_busy_spread_pct"];
    assert!(max >= min && min >= 0, "max {max} < min {min}");
    assert!(spread >= 100, "spread {spread} is max/min in percent");
}

#[test]
fn ethics_accounting_shows_bounded_hotspots() {
    let world = tiny(21);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());
    assert!(report.busiest_server_queries > 0);
    // The busiest server (typically a root or a big gTLD) must stay a
    // bounded fraction of the campaign.
    let share = report.busiest_server_queries as f64 / report.dataset.traffic.queries_sent as f64;
    assert!(share < 0.35, "hotspot share {share}");
    assert!(report.render().contains("ethics accounting"));
}

mod consistency_properties {
    use govdns::core::analysis::consistency::{classify, ConsistencyClass};

    /// classify() must be a pure function of the two NS sets (plus
    /// addresses for the disjoint split): permuting input order never
    /// changes the class.
    #[test]
    fn classify_is_order_independent() {
        use govdns::prelude::*;
        let world = WorldGenerator::new(WorldConfig::small(5).with_scale(0.01)).generate();
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let ds = govdns::core::run_campaign(&campaign, RunnerConfig::default());
        let mut checked = 0;
        for p in &ds.probes {
            let Some(class) = classify(p) else { continue };
            let mut shuffled = p.clone();
            shuffled.parent_ns.reverse();
            shuffled.child_ns.reverse();
            shuffled.servers.reverse();
            assert_eq!(classify(&shuffled), Some(class));
            // Sanity: Equal iff the sets are equal.
            let pset: std::collections::BTreeSet<_> = p.parent_ns.iter().collect();
            let cset: std::collections::BTreeSet<_> = p.child_ns.iter().collect();
            assert_eq!(class == ConsistencyClass::Equal, pset == cset);
            checked += 1;
        }
        assert!(checked > 300, "checked {checked}");
    }
}

#[test]
fn csv_bundle_writes_all_tables() {
    let world = tiny(44);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let report = Report::generate(&campaign, RunnerConfig::default());
    let dir = std::env::temp_dir().join(format!("govdns-bundle-{}", std::process::id()));
    report.write_csv_bundle(&dir).unwrap();
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    for needle in [
        "fig02_03_yearly.csv",
        "table1_diversity.csv",
        "fig13_consistency.csv",
        "dataset_summary.csv",
        "concentration.csv",
    ] {
        assert!(files.iter().any(|f| f == needle), "missing {needle} in {files:?}");
    }
    assert!(files.len() >= 22);
    for needle in [
        "telemetry_scalars.csv",
        "telemetry_stages.csv",
        "telemetry_histograms.csv",
        "telemetry_toplists.csv",
        "telemetry_ledger.csv",
    ] {
        assert!(files.iter().any(|f| f == needle), "missing {needle} in {files:?}");
    }
    let ledger_csv = std::fs::read_to_string(dir.join("telemetry_ledger.csv")).unwrap();
    assert!(ledger_csv.contains("round:round1"), "ledger csv:\n{ledger_csv}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn telemetry_snapshot_covers_the_whole_pipeline() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let world = tiny(55);
    let matchers = world.catalog.matchers();
    let campaign = Campaign::new(&world, &matchers);
    let events = Arc::new(AtomicUsize::new(0));
    let seen = events.clone();
    let ctl = CampaignTelemetry::new().with_progress(50, move |e: ProgressEvent| {
        assert!(e.done <= e.total);
        assert!(e.queries_issued > 0);
        seen.fetch_add(1, Ordering::Relaxed);
    });
    let report = Report::generate_with(&campaign, RunnerConfig::default(), &ctl);
    let snap = &report.dataset.telemetry;

    // Per-stage wall-clock durations for every pipeline phase.
    for stage in ["seed", "discovery", "round1", "analysis", "probe.domain"] {
        let s = &snap.stages[stage];
        assert!(s.count > 0, "stage {stage} never ran");
        assert!(s.total_secs > 0.0, "stage {stage} has zero duration");
    }

    // At least four response-class counters, consistent with traffic.
    let classes: Vec<_> = snap.counters.keys().filter(|k| k.starts_with("probe.class.")).collect();
    assert!(classes.len() >= 4, "classes: {classes:?}");
    assert_eq!(
        snap.counter_total("net."),
        snap.counters["net.queries"]
            + snap.counters["net.replies"]
            + snap.counters["net.timeouts"]
            + snap.counters["net.lost"]
    );
    assert_eq!(snap.counters["net.queries"], report.dataset.traffic.queries_sent);

    // The query-latency histogram carries percentiles.
    let rtt = &snap.histograms["net.rtt_ms"];
    assert_eq!(rtt.count, report.dataset.traffic.queries_sent);
    assert!(rtt.p50() <= rtt.p90() && rtt.p90() <= rtt.p99());
    assert!(rtt.p99() <= rtt.max && rtt.min <= rtt.p50());

    // Top-N busiest destinations, busiest first.
    let top = &snap.toplists["busiest destinations"];
    assert!(!top.is_empty() && top.len() <= 10);
    assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    assert_eq!(top[0].1, report.busiest_server_queries);

    // The per-round query ledger reconciles with the rate limiter.
    let issued = ctl.limiter().expect("campaign ran").issued();
    let ledger = snap.ledger.as_ref().expect("campaign publishes a ledger");
    assert_eq!(ledger.total, issued);
    assert_eq!(ledger.per_round.values().sum::<u64>(), issued);
    assert!(ledger.per_round["round1"] > 0);
    assert_eq!(snap.counters["ratelimit.issued"], issued);

    // Progress events fired and the snapshot renders everywhere.
    assert!(events.load(Ordering::Relaxed) > 0, "no progress events");
    let text = report.render();
    assert!(text.contains("pipeline telemetry"));
    assert!(text.contains("query ledger"));
    assert!(snap.to_json().contains("\"ledger\""));
}

#[test]
fn telemetry_is_purely_observational() {
    // Instrumentation must not change what the pipeline measures: both
    // entry points produce the identical dataset. One worker keeps the
    // resolver-cache schedule (and hence traffic totals) deterministic.
    let config = RunnerConfig { workers: 1, ..RunnerConfig::default() };
    let run = |telemetry: bool| {
        let world = tiny(63);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let ds = if telemetry {
            govdns::core::run_campaign_with(&campaign, config.clone(), &CampaignTelemetry::new())
        } else {
            govdns::core::run_campaign(&campaign, config.clone())
        };
        let mut summary: Vec<(String, bool, usize)> = ds
            .probes
            .iter()
            .map(|p| (p.domain.to_string(), p.has_authoritative_answer(), p.ns_union().len()))
            .collect();
        summary.sort();
        (ds.traffic, summary)
    };
    assert_eq!(run(false), run(true));
}

mod chaos {
    use super::*;

    fn chaos_config(profile: ChaosProfile, seed: u64) -> RunnerConfig {
        // One worker keeps query interleaving (and hence burst-triggered
        // faults and per-worker resolver caches) deterministic.
        RunnerConfig {
            workers: 1,
            retry: RetryPolicy::adaptive(),
            chaos: Some(ChaosSpec { profile, seed }),
            ..RunnerConfig::default()
        }
    }

    /// The ISSUE's determinism contract: same campaign seed + same
    /// fault-plan seed ⇒ byte-identical canonical dataset encodings.
    #[test]
    fn identically_seeded_chaos_runs_are_byte_identical() {
        let run = || {
            let world = tiny(7);
            let matchers = world.catalog.matchers();
            let campaign = Campaign::new(&world, &matchers);
            Report::generate(&campaign, chaos_config(ChaosProfile::Flaky, 7))
                .dataset
                .canonical_json()
        };
        let first = run();
        assert_eq!(first, run(), "chaos run is not reproducible");
        // A different fault seed over the same world must actually
        // change something, or the faults are not wired in.
        let other = {
            let world = tiny(7);
            let matchers = world.catalog.matchers();
            let campaign = Campaign::new(&world, &matchers);
            Report::generate(&campaign, chaos_config(ChaosProfile::Flaky, 8))
                .dataset
                .canonical_json()
        };
        assert_ne!(first, other, "fault seed had no effect");
    }

    /// Injected flaps must be visible end to end: fault counters and
    /// retry telemetry fire, and the second round revives at least one
    /// domain that a flap had silenced.
    #[test]
    fn second_round_recovers_injected_flaps() {
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let report = Report::generate(&campaign, chaos_config(ChaosProfile::Flaky, 7));

        assert!(report.dataset.faults.flap_timeouts > 0, "no flaps injected");
        assert!(report.dataset.telemetry.counters["fault.flap_timeouts"] > 0);
        assert!(report.dataset.telemetry.counters["probe.retry.attempts"] > 0);
        assert!(
            report.health.recovered_in_round2 >= 1,
            "round 2 revived nothing: {:?}",
            report.health
        );
        assert!(report.health.degraded_domains >= report.health.recovered_in_round2);
        assert_eq!(report.remedies.flakiness_followups, report.health.degraded_domains);
        let text = report.render();
        assert!(text.contains("measurement health"));
        assert!(text.contains("flakiness follow-ups"));
    }

    /// The hostile preset exercises every fault kind, and the pipeline
    /// still resolves most of the population through the noise.
    #[test]
    fn hostile_profile_fires_every_fault_kind() {
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let report = Report::generate(&campaign, chaos_config(ChaosProfile::Hostile, 3));
        let f = report.dataset.faults;
        assert!(f.flap_timeouts > 0, "{f:?}");
        assert!(f.losses > 0, "{f:?}");
        assert!(f.truncated > 0, "{f:?}");
        assert!(f.delayed > 0, "{f:?}");
        assert!(
            report.funnel.child_responsive * 2 > report.funnel.parent_nonempty,
            "chaos should not erase the population: {:?}",
            report.funnel
        );
    }
}

mod crash_safety {
    use super::*;
    use govdns::core::{JournalReplay, JournalSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run(seed: u64, config: RunnerConfig) -> govdns::core::MeasurementDataset {
        let world = tiny(seed);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        govdns::core::run_campaign(&campaign, config)
    }

    /// The tentpole contract: kill a journaled campaign halfway, resume
    /// from the journal, and the finished dataset is byte-identical to
    /// an uninterrupted run.
    #[test]
    fn kill_and_resume_is_byte_identical() {
        let journal = tmp("clean.journal");
        let base = RunnerConfig { workers: 1, ..RunnerConfig::default() };
        // Phase 1: half the campaign, then the simulated crash.
        let partial = run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                stop_after: Some(150),
                ..base.clone()
            },
        );
        assert_eq!(partial.probes.len(), 150, "stop_after did not stop");
        // Phase 2: resume from the journal, appending to it.
        let resumed = run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                resume_from: Some(journal.clone()),
                ..base.clone()
            },
        );
        let reference = run(63, base);
        assert!(resumed.probes.len() > 150, "resume did not continue");
        assert_eq!(
            resumed.canonical_json(),
            reference.canonical_json(),
            "resumed dataset diverged from the uninterrupted run"
        );
        // The journal itself records the resume boundary and completion.
        let replay = JournalReplay::load(&journal);
        assert_eq!(replay.resumes, 1);
        assert!(replay.completed, "finished campaign should close the journal");
        assert_eq!(replay.probes.len(), reference.probes.len());
        std::fs::remove_file(&journal).unwrap();
    }

    /// The same contract under hostile chaos with adaptive retries and
    /// guarded circuit breakers — the crash/resume boundary must not
    /// shift fault injection, retry spend, or breaker state.
    #[test]
    fn kill_and_resume_is_byte_identical_under_hostile_chaos() {
        let journal = tmp("hostile.journal");
        let base = RunnerConfig {
            workers: 1,
            retry: RetryPolicy::adaptive(),
            chaos: Some(ChaosSpec { profile: ChaosProfile::Hostile, seed: 3 }),
            breaker: BreakerPolicy::guarded(),
            ..RunnerConfig::default()
        };
        let partial = run(
            7,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 5,
                    ..JournalSpec::new(journal.clone())
                }),
                stop_after: Some(117),
                ..base.clone()
            },
        );
        assert_eq!(partial.probes.len(), 117);
        let resumed = run(
            7,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 5,
                    ..JournalSpec::new(journal.clone())
                }),
                resume_from: Some(journal.clone()),
                ..base.clone()
            },
        );
        let reference = run(7, base);
        assert_eq!(
            resumed.canonical_json(),
            reference.canonical_json(),
            "hostile-chaos resume diverged from the uninterrupted run"
        );
        std::fs::remove_file(&journal).unwrap();
    }

    /// A crash mid-append leaves a torn record at the journal's tail;
    /// the replayer drops it and the resume still converges.
    #[test]
    fn torn_journal_tail_is_dropped_on_resume() {
        let journal = tmp("torn.journal");
        let base = RunnerConfig { workers: 1, ..RunnerConfig::default() };
        run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                stop_after: Some(120),
                ..base.clone()
            },
        );
        // Tear the tail: a record the crash cut off mid-write.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
            f.write_all(b"J1 0123456789abcdef 000000ff\n{\"kind\":\"probe\",\"tr").unwrap();
        }
        let replay = JournalReplay::load(&journal);
        assert!(replay.dropped_bytes > 0, "torn tail not detected");
        assert_eq!(replay.probes.len(), 120, "torn tail corrupted valid records");
        let resumed = run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                resume_from: Some(journal.clone()),
                ..base.clone()
            },
        );
        let reference = run(63, base);
        assert_eq!(resumed.canonical_json(), reference.canonical_json());
        std::fs::remove_file(&journal).unwrap();
    }

    /// Regression for the retry ledger: resuming must restore — not
    /// re-charge — the limiter's per-round and per-destination retry
    /// accounting. A double-charge would show up as a ledger mismatch
    /// against the uninterrupted run.
    #[test]
    fn resume_does_not_double_charge_the_retry_ledger() {
        let journal = tmp("ledger.journal");
        let base = RunnerConfig {
            workers: 1,
            retry: RetryPolicy::adaptive(),
            chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: 7 }),
            ..RunnerConfig::default()
        };
        let ledger_of = |config: RunnerConfig| {
            let world = tiny(7);
            let matchers = world.catalog.matchers();
            let campaign = Campaign::new(&world, &matchers);
            let ctl = CampaignTelemetry::new();
            let ds = govdns::core::run_campaign_with(&campaign, config, &ctl);
            let state = ctl.limiter().expect("campaign ran").export_state();
            (state, ds.canonical_json())
        };
        let (_, _) = ledger_of(RunnerConfig {
            journal: Some(JournalSpec { checkpoint_every: 8, ..JournalSpec::new(journal.clone()) }),
            stop_after: Some(117),
            ..base.clone()
        });
        let (resumed_ledger, resumed_json) = ledger_of(RunnerConfig {
            journal: Some(JournalSpec { checkpoint_every: 8, ..JournalSpec::new(journal.clone()) }),
            resume_from: Some(journal.clone()),
            ..base.clone()
        });
        let (full_ledger, full_json) = ledger_of(base);
        assert_eq!(resumed_json, full_json);
        assert_eq!(
            resumed_ledger, full_ledger,
            "resume double-charged (or dropped) limiter accounting"
        );
        std::fs::remove_file(&journal).unwrap();
    }

    /// Tripped breakers must be visible end to end: telemetry counters,
    /// the health section, the quarantined toplist, and the §V-B
    /// quarantine follow-ups.
    #[test]
    fn breakers_trip_under_hostile_chaos_and_surface_in_health() {
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let report = Report::generate(
            &campaign,
            RunnerConfig {
                workers: 1,
                retry: RetryPolicy::none(),
                chaos: Some(ChaosSpec { profile: ChaosProfile::Hostile, seed: 3 }),
                breaker: BreakerPolicy { failure_threshold: 2, cooldown_rounds: 1 },
                ..RunnerConfig::default()
            },
        );
        let counters = &report.dataset.telemetry.counters;
        assert!(counters["probe.breaker.tripped"] > 0, "no breaker tripped under hostile chaos");
        assert!(counters["probe.breaker.denied"] > 0, "open breakers denied nothing");
        assert_eq!(report.health.breaker_tripped, counters["probe.breaker.tripped"]);
        assert_eq!(report.health.breaker_denied, counters["probe.breaker.denied"]);
        assert!(!report.health.quarantined.is_empty(), "no quarantined destinations surfaced");
        assert!(
            report.dataset.telemetry.toplists.contains_key("quarantined destinations"),
            "quarantined toplist missing"
        );
        let text = report.render();
        assert!(text.contains("quarantined destinations"), "health section lacks quarantine");
        assert!(text.contains("breaker_tripped"));
    }

    /// A panicking analysis stage degrades the report to a partial one:
    /// every other section still renders, the failure is named in
    /// `analysis.failed`, and the CSV bundle omits only the dead stage.
    #[test]
    fn forced_analysis_panic_yields_a_partial_report() {
        use govdns::core::report::failpoint;
        let world = tiny(44);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        failpoint::arm("providers");
        let report = Report::generate(&campaign, RunnerConfig::default());
        failpoint::disarm();

        assert_eq!(report.analysis_failures.len(), 1, "{:?}", report.analysis_failures);
        assert_eq!(report.analysis_failures[0].stage, "providers");
        let text = report.render();
        assert!(text.contains("analysis.failed"), "partial report not flagged");
        assert!(text.contains("Table I"), "healthy sections must survive");
        assert!(text.contains("Fig 10"), "healthy sections must survive");
        assert!(
            text.contains("analysis stage `providers` panicked"),
            "dead section not annotated:\n{text}"
        );

        let dir = std::env::temp_dir().join(format!("govdns-partial-{}", std::process::id()));
        report.write_csv_bundle(&dir).unwrap();
        assert!(!dir.join("table2_major_providers.csv").exists(), "dead stage still wrote CSV");
        assert!(dir.join("table1_diversity.csv").exists());
        let failed_csv = std::fs::read_to_string(dir.join("analysis_failed.csv")).unwrap();
        assert!(failed_csv.contains("providers"), "{failed_csv}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

mod trace {
    use super::*;
    use govdns::core::BreakerPolicy;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-e2e-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A chaos configuration whose trace is worker-count invariant:
    /// the shared retry budget, REFUSED-burst ordinals, and breaker
    /// races are the only interleaving-sensitive inputs, so all are off.
    fn invariant_config(workers: usize, trace: Option<TraceSpec>) -> RunnerConfig {
        RunnerConfig {
            workers,
            retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
            chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: 7 }),
            breaker: BreakerPolicy::none(),
            trace,
            ..RunnerConfig::default()
        }
    }

    fn run(config: RunnerConfig) -> govdns::core::MeasurementDataset {
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        govdns::core::run_campaign(&campaign, config)
    }

    /// The tentpole determinism contract: identically seeded campaigns
    /// write byte-identical trace files at any worker count.
    #[test]
    fn trace_files_are_byte_identical_across_worker_counts() {
        let path_1 = tmp("w1.trace");
        let path_4 = tmp("w4.trace");
        run(invariant_config(1, Some(TraceSpec::new(&path_1).with_seed(7))));
        run(invariant_config(4, Some(TraceSpec::new(&path_4).with_seed(7))));
        let bytes_1 = std::fs::read(&path_1).unwrap();
        let bytes_4 = std::fs::read(&path_4).unwrap();
        assert!(!bytes_1.is_empty(), "empty trace file");
        assert_eq!(bytes_1, bytes_4, "trace files differ between 1 and 4 workers");

        let log = read_trace(&path_1).unwrap();
        assert!(log.completed, "no completion trailer");
        assert_eq!(log.dropped_bytes, 0, "torn tail in a clean run");
        let header = log.header.as_ref().unwrap();
        assert_eq!(log.domains.len() as u64, header.domains, "full sampling missed domains");
        assert!(log.events_total() > 0);
    }

    /// The flight recorder is an observer: enabling it must not change
    /// a single byte of the measurement dataset.
    #[test]
    fn tracing_does_not_change_the_dataset() {
        let untraced = run(invariant_config(1, None)).canonical_json();
        let path = tmp("observer.trace");
        let traced = run(invariant_config(1, Some(TraceSpec::new(&path).with_seed(7))));
        assert_eq!(untraced, traced.canonical_json(), "tracing perturbed the dataset");
    }

    /// A degraded domain's block must reconstruct the causal story —
    /// injected fault, backoff, eventual recovery — and the report must
    /// surface exemplar timelines from the trace.
    #[test]
    fn degraded_domain_timeline_reconstructs_the_causal_story() {
        let path = tmp("timeline.trace");
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let ctl = CampaignTelemetry::new();
        let config = invariant_config(1, Some(TraceSpec::new(&path).with_seed(7)));
        let report = Report::generate_with(&campaign, config, &ctl);
        assert!(report.health.degraded_domains > 0, "need a degraded domain to trace");
        assert!(
            !report.health.exemplars.is_empty(),
            "report did not surface exemplar timelines from the trace"
        );
        assert!(report.render().contains("exemplar degraded-domain timelines"));

        let log = read_trace(&path).unwrap();
        let block = report
            .dataset
            .probes
            .iter()
            .enumerate()
            .find(|(_, p)| p.degraded())
            .and_then(|(i, _)| log.domain(&report.dataset.discovered[i].name.to_string()))
            .expect("degraded domain missing from a fully sampled trace");
        let timeline = block.timeline().join("\n");
        assert!(timeline.contains("fault verdict="), "no injected fault in:\n{timeline}");
        assert!(timeline.contains("backoff"), "no retry backoff in:\n{timeline}");
        assert!(
            timeline.contains("class=authoritative") || timeline.contains("class=timeout"),
            "no terminal response class in:\n{timeline}"
        );
    }

    /// Tripping a circuit breaker dumps the flight recorder, capturing
    /// the events that led to quarantine.
    #[test]
    fn breaker_trip_dumps_the_flight_recorder() {
        let path = tmp("breaker.trace");
        let config = RunnerConfig {
            workers: 1,
            retry: RetryPolicy::adaptive(),
            chaos: Some(ChaosSpec { profile: ChaosProfile::Hostile, seed: 3 }),
            breaker: BreakerPolicy::guarded(),
            trace: Some(TraceSpec::new(&path).with_seed(3)),
            ..RunnerConfig::default()
        };
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let dataset = govdns::core::run_campaign(&campaign, config);
        assert!(
            dataset.telemetry.counters["probe.breaker.tripped"] > 0,
            "hostile run tripped no breakers"
        );
        let log = read_trace(&path).unwrap();
        let trips: Vec<_> = log.dumps.iter().filter(|d| d.trigger == "breaker_trip").collect();
        assert!(!trips.is_empty(), "no breaker_trip flight dump");
        for dump in trips {
            assert!(dump.domain.is_some(), "breaker dump lost its domain context");
            assert!(!dump.events.is_empty(), "breaker dump captured no events");
        }
    }
}

mod smells {
    use super::*;
    use govdns::core::BreakerPolicy;
    use govdns::smell::SmellReport;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-e2e-smell-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// The worker-count-invariant chaos recipe with full trace sampling
    /// (see `mod trace`), so every verdict can cite trace events.
    fn smell_report(workers: usize, trace_name: &str) -> (Report, std::path::PathBuf) {
        let world = tiny(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let path = tmp(trace_name);
        let config = RunnerConfig {
            workers,
            retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
            chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: 7 }),
            breaker: BreakerPolicy::none(),
            trace: Some(TraceSpec::new(&path).with_seed(7)),
            ..RunnerConfig::default()
        };
        let ctl = CampaignTelemetry::new();
        (Report::generate_with(&campaign, config, &ctl), path)
    }

    /// The tentpole contract: identically seeded smell reports are
    /// byte-identical at any worker count, and the seed-7 world
    /// exercises every detector.
    #[test]
    fn smell_reports_are_byte_identical_across_worker_counts() {
        let (report_1, _) = smell_report(1, "w1.trace");
        let (report_8, _) = smell_report(8, "w8.trace");
        let json_1 = SmellReport::from_analysis(&report_1.smells, 7, 10_000).canonical_json();
        let json_8 = SmellReport::from_analysis(&report_8.smells, 7, 10_000).canonical_json();
        assert_eq!(json_1, json_8, "smell report differs between 1 and 8 workers");

        for kind in govdns::smell::SmellKind::all() {
            let count = report_1.smells.by_kind.get(kind.as_str()).copied().unwrap_or(0);
            assert!(count > 0, "detector {} found nothing on the seed-7 world", kind.as_str());
        }
        let round_trip = SmellReport::from_canonical_json(&json_1).unwrap();
        assert_eq!(round_trip.canonical_json(), json_1, "canonical JSON round trip drifted");
    }

    /// Every citation must resolve against the trace file it names: the
    /// `(domain, seq)` pair finds an event and the quoted line is that
    /// event's actual rendering.
    #[test]
    fn every_cited_trace_event_resolves_in_the_trace_file() {
        let (report, path) = smell_report(1, "evidence.trace");
        let log = read_trace(&path).unwrap();
        assert!(!report.smells.verdicts.is_empty(), "no verdicts to check");
        let mut citations = 0u64;
        for v in &report.smells.verdicts {
            let domain = v.domain.to_string();
            assert!(
                !v.evidence.is_empty(),
                "{domain} [{}]: no citations despite full trace sampling",
                v.kind.as_str()
            );
            for c in &v.evidence {
                let event = log
                    .resolve(&domain, c.seq)
                    .unwrap_or_else(|| panic!("{domain} seq {} cites no trace event", c.seq));
                assert_eq!(event.render(), c.line, "{domain} seq {}: stale quote", c.seq);
                citations += 1;
            }
        }
        assert_eq!(citations, report.smells.evidence_cited, "evidence tally drifted");
        // The smell pass feeds campaign telemetry and the Prometheus
        // exposition before the snapshot freezes.
        let snap = &report.dataset.telemetry;
        assert_eq!(snap.counters["smell.verdicts.total"], report.smells.verdicts.len() as u64);
        assert_eq!(snap.counters["smell.evidence.cited"], report.smells.evidence_cited);
        let prom = snap.render_prometheus();
        assert!(prom.contains("govdns_smell_verdicts_total"), "smell counters missing:\n{prom}");
    }
}

mod sink_pipeline {
    use super::*;
    use govdns::core::{BreakerPolicy, JournalReplay, JournalSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-e2e-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run(seed: u64, config: RunnerConfig) -> govdns::core::MeasurementDataset {
        let world = tiny(seed);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        govdns::core::run_campaign(&campaign, config)
    }

    /// The zero-contention contract: when a campaign's outstanding
    /// records fit the channel bound, workers hand them to the I/O
    /// threads and never wait — the backpressure meter stays at zero
    /// (structurally: fewer messages than channel slots can never
    /// fill the channel) and the runner advertises the lock-free sink
    /// path. On a starved box a bigger campaign may legitimately
    /// backpressure; that is the meter's job, not a failure.
    #[test]
    fn workers_never_wait_on_sink_io_within_the_channel_bound() {
        let journal = tmp("wait.journal");
        let trace = tmp("wait.trace");
        let ds = run(
            17,
            RunnerConfig {
                workers: 4,
                stop_after: Some(500),
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                trace: Some(TraceSpec::new(&trace).with_seed(17)),
                ..RunnerConfig::default()
            },
        );
        assert_eq!(ds.probes.len(), 500);
        let gauges = &ds.telemetry.gauges;
        assert_eq!(gauges["runner.sink_lock_free"], 1, "sink path not advertised lock-free");
        assert_eq!(gauges["runner.sink_wait_ns"], 0, "workers blocked on sink backpressure");
        assert!(gauges["runner.chunk_claims"] > 0, "no chunk claims recorded");
        assert!(gauges.contains_key("runner.sink_queue_depth"), "queue-depth gauge missing");
        std::fs::remove_file(&journal).unwrap();
        std::fs::remove_file(&trace).unwrap();
    }

    /// What the sinks promise about determinism: at a fixed worker
    /// count the dataset, journal, and trace file are byte-stable
    /// across identical runs, and the trace file is additionally
    /// byte-identical across worker counts. (Full dataset/journal
    /// bytes follow per-worker resolver-cache warmth — side-query
    /// tallies — so only the trace makes the cross-worker-count
    /// promise; see the chaos/trace examples.)
    #[test]
    fn sink_outputs_are_byte_stable_and_traces_worker_invariant() {
        let outputs = |workers: usize, tag: &str| {
            let journal = tmp(&format!("ident-{tag}.journal"));
            let trace = tmp(&format!("ident-{tag}.trace"));
            // One final merged checkpoint only (threshold above the
            // domain count): intermediate checkpoints sample in-flight
            // scheduler state, which is timing-dependent by design.
            let ds = run(
                7,
                RunnerConfig {
                    workers,
                    stop_after: Some(400),
                    retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
                    chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed: 7 }),
                    breaker: BreakerPolicy::none(),
                    journal: Some(JournalSpec {
                        checkpoint_every: 1_000_000,
                        ..JournalSpec::new(journal.clone())
                    }),
                    trace: Some(TraceSpec::new(&trace).with_seed(7)),
                    ..RunnerConfig::default()
                },
            );
            let j = std::fs::read(&journal).unwrap();
            let t = std::fs::read(&trace).unwrap();
            std::fs::remove_file(&journal).unwrap();
            std::fs::remove_file(&trace).unwrap();
            (ds.canonical_json(), j, t)
        };
        let (ds_a, j_a, t_a) = outputs(1, "w1a");
        let (ds_b, j_b, t_b) = outputs(1, "w1b");
        assert!(!j_a.is_empty() && !t_a.is_empty(), "empty sink output");
        assert_eq!(ds_a, ds_b, "dataset not byte-stable across identical runs");
        assert_eq!(j_a, j_b, "journal not byte-stable across identical runs");
        assert_eq!(t_a, t_b, "trace not byte-stable across identical runs");
        let (_, _, t_8) = outputs(8, "w8");
        assert_eq!(t_a, t_8, "trace file differs across worker counts");
    }

    /// The async sink's crash window: a hard kill can lose messages
    /// still queued behind the I/O thread, leaving the journal a valid
    /// but shorter prefix — fewer probes on disk than were completed.
    /// Resume must replay that prefix and still converge byte-for-byte
    /// with an uninterrupted run.
    #[test]
    fn resume_through_a_partially_drained_sink_queue() {
        let journal = tmp("drained.journal");
        let base = RunnerConfig { workers: 1, stop_after: Some(600), ..RunnerConfig::default() };
        run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                stop_after: Some(150),
                ..base.clone()
            },
        );
        // Chop complete trailing records off the journal — the bytes a
        // kill would have stranded in the sink channel. Each record is
        // a frame line plus a body line.
        let bytes = std::fs::read(&journal).unwrap();
        let lines: Vec<&[u8]> = bytes.split_inclusive(|&b| b == b'\n').collect();
        assert!(lines.len() > 40, "journal too short to truncate meaningfully");
        let truncated: Vec<u8> = lines[..lines.len() - 20].concat();
        std::fs::write(&journal, &truncated).unwrap();
        let replay = JournalReplay::load(&journal);
        assert!(replay.probes.len() < 150, "truncation did not shorten the prefix");
        assert_eq!(replay.dropped_bytes, 0, "whole-record truncation left a torn tail");
        let resumed = run(
            63,
            RunnerConfig {
                journal: Some(JournalSpec {
                    checkpoint_every: 8,
                    ..JournalSpec::new(journal.clone())
                }),
                resume_from: Some(journal.clone()),
                ..base.clone()
            },
        );
        let reference = run(63, base);
        assert_eq!(
            resumed.canonical_json(),
            reference.canonical_json(),
            "resume through a lost sink tail diverged"
        );
        std::fs::remove_file(&journal).unwrap();
    }
}

mod counterfactual {
    use super::*;
    use govdns::core::BreakerPolicy;
    use govdns::counterfactual::{enumerate_scenarios, is_dark, EnumerationConfig, ScenarioKind};
    use govdns::diff::DatasetView;
    use std::collections::BTreeSet;

    fn small(seed: u64) -> govdns::world::World {
        WG::new(WorldConfig::small(seed).with_scale(0.004)).generate()
    }

    fn invariant_config(scenario: Option<ScenarioSpec>, trace: Option<TraceSpec>) -> RunnerConfig {
        RunnerConfig {
            workers: 1,
            retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
            chaos: None,
            scenario,
            breaker: BreakerPolicy::none(),
            trace,
            ..RunnerConfig::default()
        }
    }

    /// The headline counterfactual claim, end to end: killing the
    /// largest third-party DNS provider darkens government domains in
    /// *multiple countries* at once — and the run is fully observable
    /// (scenario marker in the trace, outage faults in the dataset).
    #[test]
    fn provider_outage_darkens_a_multi_country_set() {
        let world = small(7);
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let baseline = govdns::core::run_campaign(&campaign, invariant_config(None, None));
        assert_eq!(baseline.faults.outages, 0, "no blackholes without a scenario");

        let scenarios = enumerate_scenarios(
            &baseline,
            &matchers,
            &world.asn_db,
            EnumerationConfig { max_per_kind: 1, ..EnumerationConfig::default() },
        );
        let scenario = scenarios
            .iter()
            .find(|s| s.kind == ScenarioKind::Provider)
            .expect("the world outsources to at least one provider");

        let trace_path =
            std::env::temp_dir().join(format!("govdns-e2e-cf-{}.trace", std::process::id()));
        let spec = scenario.spec();
        let under = govdns::core::run_campaign(
            &campaign,
            invariant_config(Some(spec.clone()), Some(TraceSpec::new(&trace_path).with_seed(7))),
        );
        assert!(under.faults.outages > 0, "blackholed nameservers must surface as outage faults");

        let diff = DatasetView::from_dataset(&baseline).diff(&DatasetView::from_dataset(&under));
        let country_of: std::collections::BTreeMap<String, &str> =
            baseline.discovered.iter().map(|d| (d.name.to_string(), d.country.as_str())).collect();
        let countries: BTreeSet<&str> = diff
            .transitions
            .iter()
            .filter(|t| !is_dark(t.from) && is_dark(t.to))
            .filter_map(|t| country_of.get(&t.domain).copied())
            .collect();
        assert!(
            countries.len() >= 2,
            "provider {} must darken governments in multiple countries, got {countries:?}",
            scenario.subject
        );

        let log = read_trace(&trace_path).unwrap();
        assert!(
            log.stages.iter().any(|(k, v)| k == "scenario" && *v == spec.label),
            "scenario marker missing from trace stages: {:?}",
            log.stages
        );
        std::fs::remove_file(&trace_path).unwrap();
    }
}

/// Robustness: the headline rates hold across independent seeds (run
/// explicitly with `cargo test -- --ignored`; three worlds take a while).
#[test]
#[ignore = "slow: generates three worlds"]
fn headline_rates_hold_across_seeds() {
    for seed in [101, 202, 303] {
        let world = WG::new(WorldConfig::small(seed).with_scale(0.02)).generate();
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        let report = Report::generate(&campaign, RunnerConfig::default());
        let multi = report.active_replication.multi_ns_share;
        assert!((95.0..100.0).contains(&multi), "seed {seed}: multi-NS {multi}");
        let equal = report.consistency.equal_pct;
        assert!((70.0..85.0).contains(&equal), "seed {seed}: P=C {equal}");
        let defective = report.delegation.any_defective_pct();
        assert!((20.0..38.0).contains(&defective), "seed {seed}: defective {defective}");
    }
}
